#include "obs/slo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "util/error.hpp"

namespace svo::obs {

std::string to_string(SloKind kind) {
  switch (kind) {
    case SloKind::QuantileBelow:
      return "quantile_below";
    case SloKind::RatioBelow:
      return "ratio_below";
    case SloKind::CounterZero:
      return "counter_zero";
  }
  return "unknown";
}

void SloObjective::validate() const {
  detail::require(!name.empty(), "SloObjective: empty name");
  detail::require(!metric.empty(), "SloObjective: empty metric");
  if (kind == SloKind::RatioBelow) {
    detail::require(!denominator.empty(),
                    "SloObjective: RatioBelow needs a denominator");
  }
  if (kind == SloKind::QuantileBelow) {
    detail::require(quantile >= 0.0 && quantile <= 1.0,
                    "SloObjective: quantile must be in [0,1]");
  }
  if (kind != SloKind::CounterZero) {
    detail::require(threshold > 0.0,
                    "SloObjective: threshold must be positive");
  }
  detail::require(error_budget > 0.0 && error_budget <= 1.0,
                  "SloObjective: error_budget must be in (0,1]");
  detail::require(fast_windows > 0, "SloObjective: fast_windows must be > 0");
  detail::require(slow_windows >= fast_windows,
                  "SloObjective: slow_windows must be >= fast_windows");
  detail::require(burn_threshold > 0.0,
                  "SloObjective: burn_threshold must be positive");
}

SloTracker::SloTracker(std::vector<SloObjective> objectives,
                       MetricRegistry* surface)
    : objectives_(std::move(objectives)), surface_(surface) {
  for (const SloObjective& o : objectives_) o.validate();
  status_.resize(objectives_.size());
  recent_.resize(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    status_[i].name = objectives_[i].name;
  }
}

namespace {

/// Did this window violate the objective? No data = no violation — an
/// idle window burns no budget.
bool window_violates(const SloObjective& o, const Window& w) {
  switch (o.kind) {
    case SloKind::QuantileBelow: {
      const Histogram::Snapshot s = w.histogram(o.metric);
      if (s.count == 0) return false;
      return s.quantile(o.quantile) >= o.threshold;
    }
    case SloKind::RatioBelow: {
      const std::uint64_t denom = w.counter(o.denominator);
      if (denom == 0) return false;
      const double rate = static_cast<double>(w.counter(o.metric)) /
                          static_cast<double>(denom);
      return rate >= o.threshold;
    }
    case SloKind::CounterZero:
      return w.counter(o.metric) > 0;
  }
  return false;
}

/// Burn rate over the newest `span` verdicts: the observed violation
/// fraction as a multiple of the budgeted fraction. 1.0 = spending the
/// budget exactly as fast as allowed. Uses the windows seen so far when
/// fewer than `span` exist — early breaches should not hide behind a
/// warm-up period.
double burn_rate(const std::vector<bool>& recent, std::size_t span,
                 double budget) {
  if (recent.empty()) return 0.0;
  const std::size_t n = std::min(span, recent.size());
  std::size_t bad = 0;
  for (std::size_t i = recent.size() - n; i < recent.size(); ++i) {
    if (recent[i]) ++bad;
  }
  return static_cast<double>(bad) / static_cast<double>(n) / budget;
}

}  // namespace

const std::vector<SloStatus>& SloTracker::evaluate(const Window& window) {
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& o = objectives_[i];
    SloStatus& st = status_[i];
    const bool violated = window_violates(o, window);

    std::vector<bool>& ring = recent_[i];
    ring.push_back(violated);
    if (ring.size() > o.slow_windows) ring.erase(ring.begin());

    ++st.windows;
    if (violated) ++st.violations;
    st.violated_last = violated;
    st.budget_consumed = static_cast<double>(st.violations) /
                         (static_cast<double>(st.windows) * o.error_budget);
    st.fast_burn = burn_rate(ring, o.fast_windows, o.error_budget);
    st.slow_burn = burn_rate(ring, o.slow_windows, o.error_budget);
    const bool breached =
        st.fast_burn >= o.burn_threshold && st.slow_burn >= o.burn_threshold;
    const bool onset = breached && !st.breached;
    if (onset) ++st.breach_onsets;
    st.breached = breached;

    if (surface_ != nullptr) {
      const std::string prefix = "slo." + o.name;
      if (violated) surface_->counter(prefix + ".violations").add();
      if (onset) surface_->counter(prefix + ".breaches").add();
      surface_->gauge(prefix + ".violated").set(violated ? 1.0 : 0.0);
      surface_->gauge(prefix + ".budget_consumed").set(st.budget_consumed);
      surface_->gauge(prefix + ".fast_burn").set(st.fast_burn);
      surface_->gauge(prefix + ".slow_burn").set(st.slow_burn);
      surface_->gauge(prefix + ".breached").set(breached ? 1.0 : 0.0);
    }
  }
  return status_;
}

bool SloTracker::any_breached() const noexcept {
  return std::any_of(status_.begin(), status_.end(),
                     [](const SloStatus& s) { return s.breached; });
}

}  // namespace svo::obs
