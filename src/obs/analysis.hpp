/// \file analysis.hpp
/// Trace analytics — the intelligence layer over the observability
/// spine (DESIGN.md §4e). The recorder exports raw events; this module
/// loads them back in (JSONL or Chrome trace_event JSON, via
/// obs::json_parse) and answers the operator questions the raw files
/// cannot:
///
///  * per-span aggregates — count, total, p50/p95 (util::percentile) —
///    and the top-k hot spans of a run;
///  * collapsed-stack output (one "root;child;leaf self_us" line per
///    distinct stack) consumable by flamegraph.pl / speedscope;
///  * the causal message DAG of a trusted-party protocol run —
///    CFP/REPORT/AWARD/ACK flows with drops and retries — and the
///    *critical path* of each formation round: which member's message
///    chain bounded the round's simulated completion time;
///  * BENCH_*.json regression diffing with per-metric direction rules
///    and relative thresholds (tools/bench_diff, CI gate).
///
/// Everything here is read-only over exported artifacts: it never
/// touches the live Recorder, so analyzing a trace can itself be traced.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json_parse.hpp"
#include "obs/trace.hpp"

namespace svo::obs::analysis {

// --- loading -------------------------------------------------------------

/// Rebuild one TraceEvent from its exported JSON object. Events with an
/// unknown "ph" (e.g. metadata from other producers) yield no event.
/// `null` args — the JsonWriter image of non-finite doubles — come back
/// as quiet NaN, preserving "this value was not finite".
[[nodiscard]] bool event_from_json(const JsonValue& v, TraceEvent& out);

/// Parse a trace artifact: flat JSONL (one event object per line) or a
/// Chrome trace ({"traceEvents": [...]}). Autodetected. Throws IoError
/// when the text is neither.
[[nodiscard]] std::vector<TraceEvent> parse_trace(std::string_view text);

/// parse_trace over a file. Throws IoError when unreadable.
[[nodiscard]] std::vector<TraceEvent> load_trace_file(
    const std::string& path);

// --- span aggregates -----------------------------------------------------

/// Descriptive statistics of one span name across a trace.
struct SpanStats {
  std::string name;
  std::size_t count = 0;
  double total_us = 0.0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p95_us = 0.0;
  double max_us = 0.0;
};

/// Aggregate all Complete events by name, sorted by total time
/// descending (the top-k hot spans are the first k entries).
[[nodiscard]] std::vector<SpanStats> aggregate_spans(
    const std::vector<TraceEvent>& events);

/// One collapsed flamegraph line: semicolon-joined ancestor names and
/// the stack's *self* time (duration minus child span time).
struct CollapsedStack {
  std::string stack;
  std::uint64_t self_us = 0;
};

/// Fold spans into collapsed-stack lines via their causal parent links
/// (non-span ancestors — flows, phases — terminate the stack walk).
/// Sorted by stack string; feed to flamegraph.pl / speedscope as
/// "<stack> <self_us>".
[[nodiscard]] std::vector<CollapsedStack> collapsed_stacks(
    const std::vector<TraceEvent>& events);

// --- protocol causal analysis --------------------------------------------

/// One message flow reconstructed from FlowStart/FlowEnd events.
struct MessageHop {
  std::uint64_t flow_id = 0;
  std::string type;        ///< "CFP", "REPORT", "AWARD", "ACK", ...
  std::size_t from = 0;    ///< network node (0 = trusted party)
  std::size_t to = 0;
  std::size_t bytes = 0;
  double send_sim_s = 0.0;
  double deliver_sim_s = 0.0;  ///< meaningless when !delivered
  bool delivered = false;
  /// Flow id of the message whose handling caused this one (0 = root,
  /// i.e. initiated by the trusted party's own control flow).
  std::uint64_t cause = 0;
  /// Formation round (0 = initial, k = k-th repair), from the nearest
  /// ancestor protocol-phase event.
  std::size_t round = 0;
  /// Name of that phase event ("protocol.phase.collecting", ...);
  /// empty when the chain never reaches one.
  std::string phase;
};

/// The critical path of one formation round: the causal message chain
/// ending at the round's last delivery.
struct RoundPath {
  std::size_t round = 0;
  double completion_sim_s = 0.0;
  /// Root-to-terminal chain. waits: wire_s = deliver - send of the hop,
  /// gap_s = send - previous hop's delivery (local processing time).
  std::vector<MessageHop> hops;
  /// The non-TP endpoint of the terminal hop — the member whose chain
  /// bounded the round.
  std::string bounding_member;
};

/// Protocol-level digest of a traced run.
struct ProtocolAnalysis {
  std::vector<MessageHop> messages;              ///< in send order
  std::map<std::string, std::size_t> sent_by_type;
  std::size_t drops = 0;
  std::vector<RoundPath> rounds;                 ///< by round index
};

/// Human name of a protocol network node: "TP" for node 0, "G<k>" for
/// GSP k at node k+1 (core/distributed_tvof's layout).
[[nodiscard]] std::string node_name(std::size_t node);

/// Reconstruct the message DAG and per-round critical paths from a
/// traced protocol run. Traces without network flows yield an empty
/// analysis (messages/rounds empty) — not an error.
[[nodiscard]] ProtocolAnalysis analyze_protocol(
    const std::vector<TraceEvent>& events);

// --- text report ---------------------------------------------------------

struct ReportOptions {
  std::size_t top_k = 12;  ///< hot spans listed
};

/// The svo_cli trace-report body: span aggregates, hot spans, and (when
/// the trace contains protocol flows) message counts and per-round
/// critical paths.
void write_text_report(std::ostream& os,
                       const std::vector<TraceEvent>& events,
                       const ReportOptions& options = {});

// --- bench regression diffing --------------------------------------------

/// How a metric is judged.
enum class Direction {
  LowerIsBetter,   ///< regression when current > baseline * (1 + tol)
  HigherIsBetter,  ///< regression when current < baseline * (1 - tol)
  Exact,           ///< regression on any difference beyond tol
  Informational,   ///< reported, never gates (wall-clock timings)
};

/// First matching rule wins; `pattern` is a glob ('*' and '?') over the
/// flattened metric path (e.g. "aggregate.node_reduction",
/// "runs[2].cold_ms").
struct DiffRule {
  std::string pattern;
  Direction dir = Direction::Informational;
  double rel_tol = 0.0;
};

/// The built-in rule set for BENCH_*.json reports: wall-clock metrics
/// are informational (CI machines differ), configuration echoes and
/// equivalence booleans are exact (drift detection), node/iteration
/// counts gate lower-is-better, rates/reductions/retentions gate
/// higher-is-better. Documented in DESIGN.md §4e.
[[nodiscard]] std::vector<DiffRule> default_bench_rules();

/// Glob matcher used for rule patterns ('*' any run, '?' one char).
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text);

enum class DeltaStatus {
  Ok,            ///< within tolerance
  Improved,      ///< beyond tolerance in the good direction
  Regressed,     ///< beyond tolerance in the bad direction — gates
  Info,          ///< informational metric, any delta
  BaselineOnly,  ///< metric disappeared — gates
  CurrentOnly,   ///< new metric, reported only
};

struct MetricDelta {
  std::string path;
  double baseline = 0.0;
  double current = 0.0;
  double rel_change = 0.0;  ///< (current - baseline) / max(|baseline|, 1)
  Direction dir = Direction::Informational;
  DeltaStatus status = DeltaStatus::Ok;
};

struct BenchDiffResult {
  std::vector<MetricDelta> deltas;  ///< flattened-path order
  std::size_t regressions = 0;      ///< Regressed + BaselineOnly count
  [[nodiscard]] bool passed() const noexcept { return regressions == 0; }
};

/// Compare two bench reports (parsed BENCH_*.json documents). Numeric
/// and boolean leaves are flattened to dotted paths and judged by the
/// first matching rule; string leaves are judged only by Exact rules.
[[nodiscard]] BenchDiffResult diff_bench_reports(
    const JsonValue& baseline, const JsonValue& current,
    const std::vector<DiffRule>& rules = default_bench_rules());

}  // namespace svo::obs::analysis
