/// \file export_prom.hpp
/// Live exporters for the continuous-telemetry layer (DESIGN.md §4j):
///  - write_prometheus(): text exposition format 0.0.4 over a
///    MetricRegistry snapshot — counters/gauges verbatim, histograms as
///    cumulative `le`-labelled buckets + `_sum`/`_count`, names
///    sanitized to the Prometheus charset. Scrape-ready: dump it behind
///    any HTTP handler or into a node_exporter textfile.
///  - write_window_jsonl(): one compact JSON object per closed
///    obs::Window, append-friendly — the service's periodic time-series
///    log rides the shared JsonWriter like every other artifact.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

namespace svo::obs {

class MetricRegistry;
struct Window;

/// Sanitize a metric name to Prometheus rules: [a-zA-Z0-9_:], leading
/// digit prefixed with '_'. Dots (our namespace separator) become '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name);

/// Text exposition of every metric in the registry, one coherent
/// snapshot. `prefix` namespaces the exported families ("svo" →
/// `svo_svc_ticks_total`). Counters gain a `_total` suffix per
/// convention; histogram buckets are cumulative with
/// le="1","2","4",...,"+Inf" matching the log2 bucket bounds.
void write_prometheus(std::ostream& os, const MetricRegistry& registry,
                      std::string_view prefix = "svo");

/// One window as a single JSON line (no trailing newline is NOT
/// appended — callers add '\n' to keep JSONL framing explicit).
/// Histograms are compacted to count/sum/min/max plus p50/p95/p99
/// estimates — the consumers of the JSONL feed plot trends, they do
/// not re-bucket.
void write_window_jsonl(std::ostream& os, const Window& window);

}  // namespace svo::obs
