#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/json.hpp"

namespace svo::obs {

std::uint64_t now_micros() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          TraceClock::now().time_since_epoch())
          .count());
}

Recorder& Recorder::instance() noexcept {
  static Recorder recorder;
  return recorder;
}

Recorder::ThreadBuffer& Recorder::local_buffer() {
  // One buffer per (thread, process lifetime); ownership is shared with
  // the recorder so events survive thread exit until exported.
  thread_local std::shared_ptr<ThreadBuffer> buffer = [this] {
    auto b = std::make_shared<ThreadBuffer>();
    b->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(buffers_mu_);
    buffers_.push_back(b);
    return b;
  }();
  return *buffer;
}

void Recorder::record(TraceEvent ev) {
  if (!enabled()) return;
  ThreadBuffer& buf = local_buffer();
  ev.tid = buf.tid;
  std::lock_guard<std::mutex> lock(buf.mu);
  buf.events.push_back(std::move(ev));
}

std::vector<TraceEvent> Recorder::snapshot_events() const {
  std::vector<TraceEvent> out;
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      out.insert(out.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

std::size_t Recorder::event_count() const {
  std::lock_guard<std::mutex> lock(buffers_mu_);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

void Recorder::clear() {
  {
    std::lock_guard<std::mutex> lock(buffers_mu_);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> buf_lock(buf->mu);
      buf->events.clear();
    }
  }
  metrics_.reset();
  generation_.fetch_add(1, std::memory_order_relaxed);
}

// --- causal context -----------------------------------------------------

namespace {

/// Per-thread stack of open span ids. Plain thread_local (not owned by
/// the recorder): contexts are a control-flow property of the thread,
/// and a stale stack across Recorder::clear() is exactly what the
/// generation check exists to catch.
std::vector<std::uint64_t>& context_stack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

}  // namespace

std::uint64_t Recorder::current_context() const noexcept {
  const auto& stack = context_stack();
  return stack.empty() ? 0 : stack.back();
}

void Recorder::push_context(std::uint64_t id) {
  if (id != 0) context_stack().push_back(id);
}

bool Recorder::pop_context(std::uint64_t id) {
  if (id == 0) return true;  // inactive span: nothing was pushed
  auto& stack = context_stack();
  if (!stack.empty() && stack.back() == id) {
    stack.pop_back();
    return true;
  }
  // Misuse. Distinguish out-of-order (id deeper in the stack: unwind to
  // it so subsequent parents stay sane) from end-without-begin (absent:
  // ended twice through different paths, or began before a clear()).
  for (std::size_t i = stack.size(); i-- > 0;) {
    if (stack[i] == id) {
      report_misuse("span ended out of order (unwound enclosing spans)", id);
      stack.resize(i);
      return false;
    }
  }
  report_misuse("span end without matching begin", id);
  return false;
}

void Recorder::report_misuse(const char* detail, std::uint64_t id) {
  misuse_count_.fetch_add(1, std::memory_order_relaxed);
  std::fprintf(stderr, "obs: span-stack misuse: %s (span id %llu)\n", detail,
               static_cast<unsigned long long>(id));
  if (!enabled()) return;
  try {
    TraceEvent ev;
    ev.name = "obs.error.span_misuse";
    ev.category = "obs";
    ev.kind = EventKind::Instant;
    ev.start_us = now_micros();
    ev.id = next_id();
    ev.parent = id;
    ev.sargs.emplace_back("detail", detail);
    record(std::move(ev));
  } catch (...) {
    // Telemetry about telemetry must never take the process down.
  }
}

std::uint64_t current_span_id() noexcept {
  return Recorder::instance().current_context();
}

namespace {

void write_event_fields(JsonWriter& w, const TraceEvent& ev) {
  w.kv("name", std::string_view(ev.name));
  w.kv("cat", std::string_view(ev.category));
  switch (ev.kind) {
    case EventKind::Complete:
      w.kv("ph", "X");
      break;
    case EventKind::FlowStart:
      w.kv("ph", "s");
      break;
    case EventKind::FlowEnd:
      // Bind the arrow head to the enclosing slice (the deliver span).
      w.kv("ph", "f");
      w.kv("bp", "e");
      break;
    case EventKind::Instant:
      w.kv("ph", "i");
      w.kv("s", "t");
      break;
  }
  w.kv("ts", ev.start_us);
  if (ev.kind == EventKind::Complete) w.kv("dur", ev.duration_us);
  w.kv("pid", 1);
  w.kv("tid", ev.tid);
  // Causal-DAG fields. "id" is the Chrome flow-binding key for s/f
  // events; for spans it (and "parent", a custom key both viewers
  // ignore) exists for obs::analysis to rebuild the DAG.
  if (ev.id != 0) w.kv("id", ev.id);
  if (ev.parent != 0) w.kv("parent", ev.parent);
  if (ev.args.empty() && ev.sargs.empty()) return;
  w.key("args").begin_object();
  for (const auto& [k, v] : ev.args) w.kv(std::string_view(k), v);
  for (const auto& [k, v] : ev.sargs) {
    w.kv(std::string_view(k), std::string_view(v));
  }
  w.end_object();
}

}  // namespace

void Recorder::write_chrome_trace(std::ostream& os) const {
  const std::vector<TraceEvent> events = snapshot_events();
  JsonWriter w(os);
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("traceEvents").begin_array();
  for (const TraceEvent& ev : events) {
    w.begin_object();
    write_event_fields(w, ev);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << '\n';
}

void Recorder::write_jsonl(std::ostream& os) const {
  for (const TraceEvent& ev : snapshot_events()) {
    JsonWriter w(os);
    w.begin_object();
    write_event_fields(w, ev);
    w.end_object();
    os << '\n';
  }
}

namespace {

bool open_or_warn(std::ofstream& out, const std::string& path) {
  out.open(path);
  if (!out) {
    std::fprintf(stderr, "obs: cannot write %s\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool Recorder::write_chrome_trace_file(const std::string& path) const {
  std::ofstream out;
  if (!open_or_warn(out, path)) return false;
  write_chrome_trace(out);
  return static_cast<bool>(out);
}

bool Recorder::write_jsonl_file(const std::string& path) const {
  std::ofstream out;
  if (!open_or_warn(out, path)) return false;
  write_jsonl(out);
  return static_cast<bool>(out);
}

bool Recorder::write_metrics_file(const std::string& path) const {
  std::ofstream out;
  if (!open_or_warn(out, path)) return false;
  metrics_.write_json(out);
  return static_cast<bool>(out);
}

// --- Span ---------------------------------------------------------------

Span::Span(const char* name, const char* category,
           std::uint64_t parent) noexcept
    : name_(name), category_(category) {
  Recorder& rec = Recorder::instance();
  if (!rec.enabled()) return;  // strict no-op path
  active_ = true;
  id_ = rec.next_id();
  parent_ = parent != 0 ? parent : rec.current_context();
  generation_ = rec.generation();
  try {
    rec.push_context(id_);
  } catch (...) {
    id_ = 0;  // context allocation failed: record as a rootless span
  }
  start_us_ = now_micros();
}

void Span::arg(const char* key, double value) noexcept {
  if (!active_ || num_args_ >= kMaxArgs) return;
  args_[num_args_++] = {key, value};
}

void Span::arg(const char* key, const char* value) noexcept {
  if (!active_ || num_sargs_ >= kMaxStringArgs) return;
  sargs_[num_sargs_++] = {key, value};
}

void Span::end() noexcept {
  if (!active_) return;
  active_ = false;
  const std::uint64_t stop = now_micros();
  Recorder& rec = Recorder::instance();
  rec.pop_context(id_);  // must happen even on rejection paths below
  if (rec.generation() != generation_) {
    // The recorder was cleared while this span was open: its start time
    // belongs to the previous trace window and its parent chain was
    // invalidated. Reject explicitly instead of recording a torn event.
    rec.report_misuse("span lifetime crossed Recorder::clear()", id_);
    return;
  }
  try {
    TraceEvent ev;
    ev.name = name_;
    ev.category = category_;
    ev.id = id_;
    ev.parent = parent_;
    ev.start_us = start_us_;
    ev.duration_us = stop - start_us_;
    ev.args.reserve(num_args_);
    for (std::size_t i = 0; i < num_args_; ++i) {
      ev.args.emplace_back(args_[i].first, args_[i].second);
    }
    for (std::size_t i = 0; i < num_sargs_; ++i) {
      ev.sargs.emplace_back(sargs_[i].first, sargs_[i].second);
    }
    Recorder::instance().record(std::move(ev));
  } catch (...) {
    // Allocation failure while recording telemetry must not take down
    // the solve it was measuring.
  }
}

// --- TraceSession -------------------------------------------------------

TraceSession::TraceSession() {
  if (const char* p = std::getenv("SVO_TRACE")) trace_path_ = p;
  if (const char* p = std::getenv("SVO_METRICS")) metrics_path_ = p;
  init();
}

TraceSession::TraceSession(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)), metrics_path_(std::move(metrics_path)) {
  if (metrics_path_.empty()) {
    if (const char* p = std::getenv("SVO_METRICS")) metrics_path_ = p;
  }
  init();
}

void TraceSession::init() {
  if (trace_path_.empty() && metrics_path_.empty()) return;
  active_ = true;
  Recorder& rec = Recorder::instance();
  was_enabled_ = rec.enabled();
  rec.enable();
}

void TraceSession::flush() {
  if (!active_ || flushed_) return;
  flushed_ = true;
  Recorder& rec = Recorder::instance();
  if (!trace_path_.empty()) {
    const bool jsonl = trace_path_.size() >= 6 &&
                       trace_path_.compare(trace_path_.size() - 6, 6,
                                           ".jsonl") == 0;
    const bool ok = jsonl ? rec.write_jsonl_file(trace_path_)
                          : rec.write_chrome_trace_file(trace_path_);
    if (ok) {
      std::fprintf(stderr, "trace written: %s (%zu events)\n",
                   trace_path_.c_str(), rec.event_count());
    }
  }
  if (!metrics_path_.empty()) {
    if (rec.write_metrics_file(metrics_path_)) {
      std::fprintf(stderr, "metrics written: %s\n", metrics_path_.c_str());
    }
  }
  if (!was_enabled_) rec.disable();
}

TraceSession::~TraceSession() { flush(); }

}  // namespace svo::obs
