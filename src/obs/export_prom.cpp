#include "obs/export_prom.hpp"

#include <cmath>
#include <ostream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/timeseries.hpp"

namespace svo::obs {

std::string prometheus_name(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out.front() >= '0' && out.front() <= '9') {
    out.insert(out.begin(), '_');
  }
  return out;
}

namespace {

std::string family(std::string_view prefix, const std::string& name) {
  if (prefix.empty()) return prometheus_name(name);
  return prometheus_name(std::string(prefix) + "_" + name);
}

/// Doubles in exposition format: plain shortest round-trip is overkill,
/// printf-style %g matches what Prometheus clients emit.
void write_double(std::ostream& os, double v) {
  if (std::isnan(v)) {
    os << "NaN";
  } else if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    os << v;
  }
}

}  // namespace

void write_prometheus(std::ostream& os, const MetricRegistry& registry,
                      std::string_view prefix) {
  const RegistrySnapshot snap = registry.snapshot();
  for (const auto& [name, value] : snap.counters) {
    const std::string f = family(prefix, name) + "_total";
    os << "# TYPE " << f << " counter\n";
    os << f << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string f = family(prefix, name);
    os << "# TYPE " << f << " gauge\n";
    os << f << ' ';
    write_double(os, value);
    os << '\n';
  }
  for (const auto& [name, s] : snap.histograms) {
    const std::string f = family(prefix, name);
    os << "# TYPE " << f << " histogram\n";
    // Cumulative le-labelled buckets on the log2 bounds. Bucket 0 is
    // [0,1) → le="1"; bucket i is [2^(i-1), 2^i) → le="2^i". Skip
    // trailing empty buckets but always emit +Inf.
    std::size_t last = 0;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      if (s.buckets[b] != 0) last = b;
    }
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b <= last; ++b) {
      cumulative += s.buckets[b];
      os << f << "_bucket{le=\"";
      write_double(os, std::ldexp(1.0, static_cast<int>(b)));
      os << "\"} " << cumulative << '\n';
    }
    os << f << "_bucket{le=\"+Inf\"} " << s.count << '\n';
    os << f << "_sum ";
    write_double(os, s.sum);
    os << '\n';
    os << f << "_count " << s.count << '\n';
  }
}

void write_window_jsonl(std::ostream& os, const Window& window) {
  JsonWriter w(os, /*pretty=*/false);
  w.begin_object();
  w.kv("window", window.index);
  w.kv("start", window.start_time);
  w.kv("end", window.end_time);
  w.key("counters").begin_object();
  for (const auto& [name, value] : window.counters) {
    if (value != 0) w.kv(name, value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : window.gauges) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, s] : window.histograms) {
    if (s.count == 0) continue;
    w.key(name).begin_object();
    w.kv("count", s.count);
    w.kv("sum", s.sum);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.kv("p50", s.quantile(0.50));
    w.kv("p95", s.quantile(0.95));
    w.kv("p99", s.quantile(0.99));
    w.end_object();
  }
  w.end_object();
  w.end_object();
}

}  // namespace svo::obs
