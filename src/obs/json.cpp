#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/error.hpp"

namespace svo::obs {

void JsonWriter::write_escaped(std::ostream& os, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\b':
        os << "\\b";
        break;
      case '\f':
        os << "\\f";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
}

void JsonWriter::newline_indent() {
  if (!pretty_) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size(); ++i) os_ << "  ";
}

void JsonWriter::before_element() {
  if (stack_.empty()) return;  // top-level value
  Level& top = stack_.back();
  if (top.kind == '{') {
    detail::require(top.key_pending,
                    "JsonWriter: value inside an object requires key()");
    top.key_pending = false;
    return;  // comma/indent were emitted by key()
  }
  if (top.count++ > 0) os_ << ',';
  newline_indent();
}

JsonWriter& JsonWriter::key(std::string_view k) {
  detail::require(!stack_.empty() && stack_.back().kind == '{',
                  "JsonWriter: key() outside an object");
  Level& top = stack_.back();
  detail::require(!top.key_pending, "JsonWriter: key() after key()");
  if (top.count++ > 0) os_ << ',';
  newline_indent();
  os_ << '"';
  write_escaped(os_, k);
  os_ << (pretty_ ? "\": " : "\":");
  top.key_pending = true;
  return *this;
}

void JsonWriter::open(char kind, char c) {
  before_element();
  os_ << c;
  stack_.push_back(Level{kind, 0, false});
}

void JsonWriter::close(char kind, char c) {
  detail::require(!stack_.empty() && stack_.back().kind == kind &&
                      !stack_.back().key_pending,
                  "JsonWriter: unbalanced end of container");
  const bool had_elements = stack_.back().count > 0;
  stack_.pop_back();
  if (had_elements) newline_indent();
  os_ << c;
}

JsonWriter& JsonWriter::begin_object() {
  open('{', '{');
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  close('{', '}');
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  open('[', '[');
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  close('[', ']');
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_element();
  os_ << (b ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double d) {
  before_element();
  if (!std::isfinite(d)) {
    os_ << "null";  // JSON has no NaN/Inf
    return *this;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  detail::require(ec == std::errc(), "JsonWriter: double format failed");
  os_.write(buf, end - buf);
  return *this;
}

JsonWriter& JsonWriter::write_int(std::int64_t v) {
  before_element();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::write_uint(std::uint64_t v) {
  before_element();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_element();
  os_ << '"';
  write_escaped(os_, s);
  os_ << '"';
  return *this;
}

}  // namespace svo::obs
