#include "svc/fault_plan.hpp"

#include <cmath>
#include <unordered_set>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::svc {

const char* to_string(TickFaultKind kind) noexcept {
  switch (kind) {
    case TickFaultKind::Abort: return "abort";
    case TickFaultKind::Stall: return "stall";
  }
  return "?";
}

void FaultPlan::validate() const {
  std::unordered_set<std::uint64_t> seen;
  for (const SolverFault& f : solver_faults) {
    svo::detail::require(f.attempts >= 1,
                         "FaultPlan: solver fault attempts must be >= 1");
    svo::detail::require(seen.insert(f.ticket).second,
                         "FaultPlan: duplicate solver fault for one ticket");
  }
  seen.clear();
  for (const TickFault& f : tick_faults) {
    svo::detail::require(
        std::isfinite(f.stall_seconds) && f.stall_seconds >= 0.0,
        "FaultPlan: stall_seconds must be finite and >= 0");
    svo::detail::require(seen.insert(f.ticket).second,
                         "FaultPlan: duplicate tick fault for one ticket");
  }
}

void ChaosProfile::validate() const {
  const auto is_rate = [](double r) {
    return std::isfinite(r) && r >= 0.0 && r <= 1.0;
  };
  svo::detail::require(is_rate(solver_fault_rate),
                       "ChaosProfile: solver_fault_rate must be in [0, 1]");
  svo::detail::require(is_rate(poison_rate),
                       "ChaosProfile: poison_rate must be in [0, 1]");
  svo::detail::require(is_rate(abort_rate),
                       "ChaosProfile: abort_rate must be in [0, 1]");
  svo::detail::require(is_rate(stall_rate),
                       "ChaosProfile: stall_rate must be in [0, 1]");
  svo::detail::require(abort_rate + stall_rate <= 1.0,
                       "ChaosProfile: abort_rate + stall_rate must be <= 1");
  svo::detail::require(
      solver_fault_rate + poison_rate <= 1.0,
      "ChaosProfile: solver_fault_rate + poison_rate must be <= 1");
  svo::detail::require(fault_attempts >= 1,
                       "ChaosProfile: fault_attempts must be >= 1");
  svo::detail::require(
      std::isfinite(stall_seconds) && stall_seconds >= 0.0,
      "ChaosProfile: stall_seconds must be finite and >= 0");
}

FaultPlan random_fault_plan(std::uint64_t seed, std::uint64_t requests,
                            const ChaosProfile& profile) {
  profile.validate();
  FaultPlan plan;
  util::Xoshiro256 rng(seed);
  for (std::uint64_t t = 0; t < requests; ++t) {
    // Two fixed draws per ticket (solver fate, tick fate) keep the
    // decision stream aligned across profiles sharing a seed — the
    // des::FaultInjector discipline.
    const double solver_draw = rng.uniform();
    const double tick_draw = rng.uniform();
    if (solver_draw < profile.poison_rate) {
      plan.solver_faults.push_back({t, SolverFault::kPoison});
    } else if (solver_draw < profile.poison_rate + profile.solver_fault_rate) {
      plan.solver_faults.push_back({t, profile.fault_attempts});
    }
    if (tick_draw < profile.abort_rate) {
      plan.tick_faults.push_back({t, TickFaultKind::Abort, 0.0});
    } else if (tick_draw < profile.abort_rate + profile.stall_rate) {
      plan.tick_faults.push_back(
          {t, TickFaultKind::Stall, profile.stall_seconds});
    }
  }
  return plan;
}

}  // namespace svo::svc
