/// \file fault_plan.hpp
/// Deterministic chaos for svc::FormationService (DESIGN.md §4h).
///
/// The paper forms VOs out of providers that fail; PR 7's service layer
/// only survived a friendly world where no shard dies and no solve
/// throws. A FaultPlan makes the service's own failure modes explicit
/// and *reproducible* — the des/fault and sim/churn idiom lifted to the
/// request plane: every injected fault is keyed by the request (ticket)
/// index it strikes, so a same-seed replay injects exactly the same
/// faults against exactly the same requests regardless of thread
/// interleaving.
///
/// Three fault classes:
///  - SolverFault: the mechanism run of one ticket throws on its first
///    `attempts` attempts. `kPoison` means *every* attempt throws — a
///    queue-poison request that can never succeed and must burn its
///    retry budget to a terminal Failed without harming its neighbours.
///  - TickFault/Abort: the shard tick that first picks up the ticket
///    dies mid-tick, after draining its batch but before running any of
///    it — the killed shard is detected, its batch re-queued intact,
///    and a supervisor restart brings it back (svc.restarts).
///  - TickFault/Stall: a straggler tick — the batch carrying the ticket
///    runs late by `stall_seconds` (exercises bounded RequestHandle::
///    wait timeouts and deadline expiry).
///
/// An empty plan is the hard equivalence point: with no faults
/// configured the service is bit-identical to the un-chaosed PR 7
/// behaviour (tests/svc/service_test.cpp pins it, RNG probe included).
#pragma once

#include <cstdint>
#include <vector>

namespace svo::svc {

/// Injected mechanism failure for one ticket: its first `attempts`
/// solve attempts throw before any solver work happens.
struct SolverFault {
  /// Every attempt throws — queue poison, the request can never succeed.
  static constexpr std::uint32_t kPoison = UINT32_MAX;

  std::uint64_t ticket = 0;
  std::uint32_t attempts = 1;
};

/// What happens to the shard tick that first drains the marked ticket.
enum class TickFaultKind {
  Abort,  ///< the tick dies mid-batch; the shard is killed + restarted
  Stall,  ///< straggler tick: the batch runs `stall_seconds` late
};

/// Human-readable name ("abort", "stall").
[[nodiscard]] const char* to_string(TickFaultKind kind) noexcept;

/// One injected tick fault, keyed by the ticket whose first drain
/// triggers it. Fires exactly once (the re-queued batch is not
/// re-struck), so chaotic runs always terminate.
struct TickFault {
  std::uint64_t ticket = 0;
  TickFaultKind kind = TickFaultKind::Stall;
  /// Straggler delay (Stall only; ignored for Abort).
  double stall_seconds = 0.0;
};

/// Fault model of one service run. Empty = "no faults" — the regime in
/// which the service is bit-identical to its un-chaosed behaviour.
struct FaultPlan {
  std::vector<SolverFault> solver_faults;
  std::vector<TickFault> tick_faults;

  /// True when any fault is configured.
  [[nodiscard]] bool enabled() const noexcept {
    return !solver_faults.empty() || !tick_faults.empty();
  }

  /// Throws InvalidArgument on: zero solver-fault attempts, duplicate
  /// ticket within either list, or a negative / non-finite stall.
  void validate() const;
};

/// Knobs for random_fault_plan (all-zero rates = empty plan).
struct ChaosProfile {
  /// Fraction of tickets whose solve fails `fault_attempts` times.
  double solver_fault_rate = 0.0;
  /// Injected failure depth for a struck ticket (how many attempts
  /// throw before the request can succeed).
  std::uint32_t fault_attempts = 1;
  /// Fraction of tickets poisoned outright (every attempt throws).
  double poison_rate = 0.0;
  /// Fraction of tickets whose first drain aborts (kills) its shard.
  double abort_rate = 0.0;
  /// Fraction of tickets whose first drain stalls its shard.
  double stall_rate = 0.0;
  /// Straggler delay applied by stall faults.
  double stall_seconds = 0.0005;

  /// Throws InvalidArgument on out-of-range rates, zero attempts, or a
  /// negative / non-finite stall.
  void validate() const;
};

/// Derive a deterministic plan over ticket ids [0, requests): each
/// ticket independently draws its fate from a stream seeded by `seed`
/// (one fate draw per ticket, so plans with different rates but one
/// seed stay aligned). A ticket suffers at most one solver fault and at
/// most one tick fault. Deterministic in (seed, requests, profile).
[[nodiscard]] FaultPlan random_fault_plan(std::uint64_t seed,
                                          std::uint64_t requests,
                                          const ChaosProfile& profile);

}  // namespace svo::svc
