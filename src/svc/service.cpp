#include "svc/service.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/timer.hpp"

namespace svo::svc {

const char* to_string(TicketState state) noexcept {
  switch (state) {
    case TicketState::Queued: return "queued";
    case TicketState::Running: return "running";
    case TicketState::Done: return "done";
    case TicketState::Cancelled: return "cancelled";
    case TicketState::Shed: return "shed";
    case TicketState::Deferred: return "deferred";
  }
  return "?";
}

void ServiceOptions::validate() const {
  svo::detail::require(shards > 0, "ServiceOptions: shards must be > 0");
  svo::detail::require(queue_capacity > 0,
                  "ServiceOptions: queue_capacity must be > 0");
  svo::detail::require(batch_size > 0, "ServiceOptions: batch_size must be > 0");
  svo::detail::require(batch_size <= queue_capacity,
                  "ServiceOptions: batch_size exceeds queue_capacity");
}

namespace detail {

/// Shared state behind one RequestHandle. The outcome is written before
/// the terminal state is published under `mu`, so any thread that
/// observed a terminal poll() may read the outcome without further
/// synchronization.
struct Ticket {
  std::uint64_t id = 0;
  std::size_t shard = 0;
  FormationService* service = nullptr;

  // Request snapshot: referenced inputs + copied RNG state / candidates.
  const ip::AssignmentInstance* instance = nullptr;
  const trust::TrustGraph* trust = nullptr;
  util::Xoshiro256 rng;
  game::Coalition candidates{};
  core::WarmStartPolicy warm = core::WarmStartPolicy::Incremental;

  util::WallTimer admitted;  ///< reset when the ticket enters its queue
  std::atomic<TicketState> state{TicketState::Queued};
  std::mutex mu;
  std::condition_variable cv;
  RequestOutcome outcome;
};

}  // namespace detail

using detail::Ticket;

/// One mechanism shard: a bounded FIFO of tickets plus the scheduling
/// flag that guarantees at most one tick task is in flight per shard
/// (shard execution is single-threaded by construction). The metric
/// references are this shard's own stable obs handles.
struct FormationService::Shard {
  Shard(std::size_t idx, obs::Counter& tick_counter,
        obs::Counter& solved_counter)
      : index(idx), ticks(tick_counter), solved(solved_counter) {}

  std::size_t index;
  std::mutex mu;
  std::deque<std::shared_ptr<Ticket>> queue;  // guarded by mu
  bool tick_scheduled = false;                // guarded by mu
  obs::Counter& ticks;
  obs::Counter& solved;
};

std::uint64_t RequestHandle::id() const noexcept { return ticket_->id; }

std::size_t RequestHandle::shard() const noexcept { return ticket_->shard; }

TicketState RequestHandle::poll() const noexcept {
  return ticket_->state.load(std::memory_order_acquire);
}

bool RequestHandle::cancel() const {
  return ticket_->service->cancel_ticket(*ticket_);
}

const RequestOutcome& RequestHandle::wait() const {
  Ticket& t = *ticket_;
  std::unique_lock<std::mutex> lock(t.mu);
  t.cv.wait(lock, [&t] {
    return is_terminal(t.state.load(std::memory_order_acquire));
  });
  return t.outcome;
}

FormationService::FormationService(const core::VoFormationMechanism& mechanism,
                                   ServiceOptions options)
    : options_((options.validate(), options)),
      mechanism_(mechanism),
      submitted_(registry_.counter("svc.submitted")),
      completed_(registry_.counter("svc.completed")),
      cancelled_(registry_.counter("svc.cancelled")),
      shed_(registry_.counter("svc.shed")),
      deferred_(registry_.counter("svc.deferred")),
      solver_runs_(registry_.counter("svc.solver_runs")),
      ticks_(registry_.counter("svc.ticks")),
      queue_us_(registry_.histogram("svc.queue_us")),
      solve_us_(registry_.histogram("svc.solve_us")),
      paused_(options_.start_paused),
      pool_(options_.threads == 0 ? options_.shards : options_.threads) {
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    const std::string prefix = "svc.shard" + std::to_string(i);
    shards_.push_back(std::make_unique<Shard>(
        i, registry_.counter(prefix + ".ticks"),
        registry_.counter(prefix + ".solved")));
  }
}

FormationService::~FormationService() {
  // Everything admitted must reach a terminal state before the pool
  // joins — handles outliving the service still resolve.
  resume();
  drain();
}

RequestHandle FormationService::submit(const core::FormationRequest& request,
                                       std::size_t routing_key) {
  const std::uint64_t id =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  auto ticket = std::make_shared<Ticket>();
  ticket->id = id;
  ticket->service = this;
  ticket->instance = &request.instance;
  ticket->trust = &request.trust;
  ticket->rng = request.rng;  // state snapshot; the caller's RNG is
                              // never advanced by the service
  ticket->candidates = request.candidates;
  ticket->warm = request.warm_start;
  ticket->outcome.ticket = id;

  // Deterministic routing: a pure function of (routing key | ticket id)
  // and the shard count — same-seed replays land every request on the
  // same shard.
  const std::size_t shard_index =
      (routing_key == SIZE_MAX ? id : routing_key) % options_.shards;
  ticket->shard = shard_index;
  ticket->outcome.shard = shard_index;
  Shard& shard = *shards_[shard_index];

  bool admitted = false;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.queue.size() < options_.queue_capacity) {
      admitted = true;
      ticket->admitted.reset();
      shard.queue.push_back(ticket);
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      if (!paused_.load() && !shard.tick_scheduled) {
        shard.tick_scheduled = true;
        schedule = true;
      }
    }
  }
  if (!admitted) {
    // Batched admission control: reject at the door, before any solver
    // work. Shed is terminal-dropped; Deferred is terminal-retryable.
    const TicketState state = options_.overload == OverloadPolicy::Shed
                                  ? TicketState::Shed
                                  : TicketState::Deferred;
    (state == TicketState::Shed ? shed_ : deferred_).add();
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      ticket->outcome.state = state;
      ticket->state.store(state, std::memory_order_release);
    }
    ticket->cv.notify_all();
    return RequestHandle(std::move(ticket));
  }
  submitted_.add();
  if (schedule) schedule_tick(shard);
  return RequestHandle(std::move(ticket));
}

bool FormationService::cancel_ticket(detail::Ticket& ticket) {
  {
    std::lock_guard<std::mutex> lock(ticket.mu);
    if (ticket.state.load(std::memory_order_acquire) != TicketState::Queued) {
      return false;  // dispatched, already terminal, or lost the race
    }
    cancelled_.add();  // accounted before the terminal publication
    ticket.outcome.state = TicketState::Cancelled;
    ticket.state.store(TicketState::Cancelled, std::memory_order_release);
  }
  ticket.cv.notify_all();
  note_terminal();
  return true;
}

void FormationService::resume() {
  paused_.store(false);
  // Wake every shard that accumulated work while paused. Safe against
  // racing submits: either they see paused_ == false and schedule, or
  // this pass sees their enqueued ticket (mutex ordering).
  for (const auto& shard : shards_) {
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (!shard->queue.empty() && !shard->tick_scheduled) {
        shard->tick_scheduled = true;
        schedule = true;
      }
    }
    if (schedule) schedule_tick(*shard);
  }
}

void FormationService::drain() {
  svo::detail::require(!paused_.load(),
                  "FormationService::drain: service is paused (resume first)");
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void FormationService::note_terminal() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under the lock so a drain() between its predicate check
    // and wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void FormationService::schedule_tick(Shard& shard) {
  // Message-driven execution: a tick is a short-lived pool task, not a
  // parked thread — at most one per shard (tick_scheduled), so a pool
  // smaller than the shard count still serves every shard.
  auto ignored = pool_.submit([this, &shard] { run_tick(shard); });
  (void)ignored;  // completion is tracked per ticket, not per tick
}

void FormationService::run_tick(Shard& shard) {
  obs::Span tick_span("svc.shard.tick", "svc");
  if (tick_span.active()) {
    tick_span.arg("shard", static_cast<double>(shard.index));
  }
  // Drain up to batch_size tickets in admission order.
  std::vector<std::shared_ptr<Ticket>> batch;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    while (batch.size() < options_.batch_size && !shard.queue.empty()) {
      batch.push_back(std::move(shard.queue.front()));
      shard.queue.pop_front();
    }
  }
  ticks_.add();
  shard.ticks.add();
  if (tick_span.active()) {
    tick_span.arg("batch", static_cast<double>(batch.size()));
  }

  for (const std::shared_ptr<Ticket>& ticket : batch) {
    Ticket& t = *ticket;
    {
      std::lock_guard<std::mutex> lock(t.mu);
      if (t.state.load(std::memory_order_acquire) != TicketState::Queued) {
        continue;  // cancelled while queued: its solver never runs
      }
      t.state.store(TicketState::Running, std::memory_order_release);
    }
    const double queue_seconds = t.admitted.seconds();
    const util::WallTimer solve_timer;
    core::MechanismResult result;
    {
      obs::Span solve_span("svc.request.solve", "svc");
      if (solve_span.active()) {
        solve_span.arg("ticket", static_cast<double>(t.id));
        solve_span.arg("shard", static_cast<double>(shard.index));
      }
      result = mechanism_.run(core::FormationRequest{
          *t.instance, *t.trust, t.rng, t.candidates, t.warm});
    }
    const double solve_seconds = solve_timer.seconds();
    // All accounting happens-before the terminal publication: a waiter
    // woken by the state change must already see consistent stats().
    solver_runs_.add();
    shard.solved.add();
    queue_us_.observe(queue_seconds * 1e6);
    solve_us_.observe(solve_seconds * 1e6);
    completed_.add();
    {
      std::lock_guard<std::mutex> lock(t.mu);
      t.outcome.result = std::move(result);
      t.outcome.rng_probe = t.rng();  // determinism probe: post-run state
      t.outcome.queue_seconds = queue_seconds;
      t.outcome.solve_seconds = solve_seconds;
      t.outcome.state = TicketState::Done;
      t.state.store(TicketState::Done, std::memory_order_release);
    }
    t.cv.notify_all();
    note_terminal();
  }

  // Yield the pool thread between batches; reschedule only while work
  // remains (and keep tick_scheduled true across the hand-off so a
  // racing submit cannot double-schedule).
  bool more = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.queue.empty() && !paused_.load()) {
      more = true;
    } else {
      shard.tick_scheduled = false;
    }
  }
  if (more) schedule_tick(shard);
}

ServiceStats FormationService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.value();
  s.completed = completed_.value();
  s.cancelled = cancelled_.value();
  s.shed = shed_.value();
  s.deferred = deferred_.value();
  s.solver_runs = solver_runs_.value();
  s.ticks = ticks_.value();
  const obs::Histogram::Snapshot queue = queue_us_.snapshot();
  const obs::Histogram::Snapshot solve = solve_us_.snapshot();
  s.queue_p50_us = queue.quantile(0.50);
  s.queue_p99_us = queue.quantile(0.99);
  s.solve_p50_us = solve.quantile(0.50);
  s.solve_p99_us = solve.quantile(0.99);
  return s;
}

}  // namespace svo::svc
