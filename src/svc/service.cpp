#include "svc/service.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <fstream>
#include <set>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "obs/export_prom.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace svo::svc {

const char* to_string(TicketState state) noexcept {
  switch (state) {
    case TicketState::Queued: return "queued";
    case TicketState::Running: return "running";
    case TicketState::Done: return "done";
    case TicketState::Cancelled: return "cancelled";
    case TicketState::Shed: return "shed";
    case TicketState::Deferred: return "deferred";
    case TicketState::Failed: return "failed";
    case TicketState::DeadlineExceeded: return "deadline_exceeded";
  }
  return "?";
}

void ServiceOptions::validate() const {
  svo::detail::require(shards > 0, "ServiceOptions: shards must be > 0");
  svo::detail::require(queue_capacity > 0,
                  "ServiceOptions: queue_capacity must be > 0");
  svo::detail::require(batch_size > 0, "ServiceOptions: batch_size must be > 0");
  svo::detail::require(batch_size <= queue_capacity,
                  "ServiceOptions: batch_size exceeds queue_capacity");
  svo::detail::require(
      std::isfinite(retry_backoff_base_seconds) &&
          retry_backoff_base_seconds >= 0.0,
      "ServiceOptions: retry_backoff_base_seconds must be finite and >= 0");
  svo::detail::require(
      std::isfinite(retry_backoff_cap_seconds) &&
          retry_backoff_cap_seconds >= retry_backoff_base_seconds,
      "ServiceOptions: retry_backoff_cap_seconds must be finite and >= base");
  faults.validate();
  svo::detail::require(
      std::isfinite(stats_window_seconds) && stats_window_seconds >= 0.0,
      "ServiceOptions: stats_window_seconds must be finite and >= 0");
  if (stats_window_seconds > 0.0) {
    svo::detail::require(stats_window_capacity > 0,
                    "ServiceOptions: stats_window_capacity must be > 0");
  } else {
    svo::detail::require(slos.empty(),
                    "ServiceOptions: slos require stats_window_seconds > 0");
    svo::detail::require(
        stats_jsonl_path.empty(),
        "ServiceOptions: stats_jsonl_path requires stats_window_seconds > 0");
  }
  for (const obs::SloObjective& o : slos) o.validate();
}

namespace detail {

/// Shared state behind one RequestHandle. The outcome is written before
/// the terminal state is published under `mu`, so any thread that
/// observed a terminal poll() may read the outcome without further
/// synchronization.
struct Ticket {
  std::uint64_t id = 0;
  std::size_t shard = 0;
  FormationService* service = nullptr;

  // Request snapshot: referenced inputs + copied RNG state / candidates.
  // `rng` is the pristine admission-time snapshot: every solve attempt
  // runs on a fresh copy, so retries are exact re-executions and the
  // probe of a successful attempt is bit-identical to a direct run.
  const ip::AssignmentInstance* instance = nullptr;
  const trust::TrustGraph* trust = nullptr;
  util::Xoshiro256 rng;
  game::Coalition candidates{};
  core::WarmStartPolicy warm = core::WarmStartPolicy::Incremental;

  // Scheduling metadata (§4h). Absolute times on the service clock.
  std::int32_t priority = 0;
  double deadline_at = std::numeric_limits<double>::infinity();
  double ready_at = 0.0;  ///< earliest dispatch (retry backoff)
  std::uint32_t max_retries = 0;
  /// Solve attempts taken so far. Mutated only by the owning shard's
  /// tick (single-threaded per shard); published with the terminal
  /// outcome under `mu`.
  std::uint32_t attempts = 0;

  // Injected chaos stamped at submit (fault_plan.hpp), keyed by id.
  std::uint32_t injected_failures = 0;  ///< attempts that throw (kPoison)
  bool has_tick_fault = false;
  TickFaultKind tick_fault_kind = TickFaultKind::Stall;
  double tick_fault_stall = 0.0;
  bool tick_fault_fired = false;  ///< owned by the shard tick

  util::WallTimer admitted;  ///< reset when the ticket enters its queue
  std::atomic<TicketState> state{TicketState::Queued};
  std::mutex mu;
  std::condition_variable cv;
  RequestOutcome outcome;
};

}  // namespace detail

using detail::Ticket;

namespace {

/// Injected solver failure: thrown instead of running the mechanism
/// when the fault plan marks this attempt.
struct InjectedFault : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Shard drain order: priority desc, deadline asc (EDF), admission
/// order. With default metadata this is exactly admission order.
struct TicketOrder {
  bool operator()(const std::shared_ptr<Ticket>& a,
                  const std::shared_ptr<Ticket>& b) const noexcept {
    if (a->priority != b->priority) return a->priority > b->priority;
    if (a->deadline_at != b->deadline_at) return a->deadline_at < b->deadline_at;
    return a->id < b->id;
  }
};

}  // namespace

/// One mechanism shard: a bounded priority queue of tickets plus the
/// scheduling flag that guarantees at most one tick task is in flight
/// per shard (shard execution is single-threaded by construction) and
/// the killed flag a fault-plan abort raises until the supervisor
/// restart clears it. The metric references are this shard's own stable
/// obs handles.
struct FormationService::Shard {
  Shard(std::size_t idx, obs::MetricRegistry& registry,
        const std::string& prefix)
      : index(idx),
        ticks(registry.counter(prefix + ".ticks")),
        solved(registry.counter(prefix + ".solved")),
        retries(registry.counter(prefix + ".retries")),
        expired(registry.counter(prefix + ".expired")),
        restarts(registry.counter(prefix + ".restarts")),
        depth(registry.gauge(prefix + ".queue_depth")) {}

  std::size_t index;
  std::mutex mu;
  std::multiset<std::shared_ptr<Ticket>, TicketOrder> queue;  // guarded by mu
  bool tick_scheduled = false;                                // guarded by mu
  bool killed = false;  ///< guarded by mu; true between abort and restart
  obs::Counter& ticks;
  obs::Counter& solved;
  obs::Counter& retries;
  obs::Counter& expired;
  obs::Counter& restarts;
  /// Live queue depth, kept by Gauge::add(±delta) at every queue
  /// mutation (all under mu) — same always-on accounting tier as the
  /// counters above, read lock-free by health() and the exporters.
  obs::Gauge& depth;
};

/// Windowed-telemetry state (DESIGN.md §4j), constructed only when
/// ServiceOptions::stats_window_seconds > 0. The tick loop's
/// maybe_sample() try-locks `mu`: sampling is best-effort per call but
/// every window eventually closes with exact [k*w, (k+1)*w) bounds.
struct FormationService::Telemetry {
  Telemetry(obs::MetricRegistry& registry, const ServiceOptions& opt)
      : window_seconds(opt.stats_window_seconds),
        next_window_end(opt.stats_window_seconds),
        series(registry, opt.stats_window_capacity),
        // Verdicts surface back into the same registry as slo.*
        // metrics; they land in the *next* window, never their own.
        slo(opt.slos, &registry) {}

  std::mutex mu;
  const double window_seconds;
  double next_window_end;          // guarded by mu
  obs::TimeSeries series;          // guarded by mu
  obs::SloTracker slo;             // guarded by mu
  std::ofstream jsonl;             // guarded by mu
};

std::uint64_t RequestHandle::id() const noexcept { return ticket_->id; }

std::size_t RequestHandle::shard() const noexcept { return ticket_->shard; }

TicketState RequestHandle::poll() const noexcept {
  return ticket_->state.load(std::memory_order_acquire);
}

bool RequestHandle::cancel() const {
  return ticket_->service->cancel_ticket(ticket_);
}

TicketState RequestHandle::wait(std::optional<double> timeout_seconds) const {
  Ticket& t = *ticket_;
  const auto terminal = [&t] {
    return is_terminal(t.state.load(std::memory_order_acquire));
  };
  std::unique_lock<std::mutex> lock(t.mu);
  if (!timeout_seconds.has_value()) {
    t.cv.wait(lock, terminal);
  } else {
    svo::detail::require(
        std::isfinite(*timeout_seconds) && *timeout_seconds >= 0.0,
        "RequestHandle::wait: timeout_seconds must be finite and >= 0");
    t.cv.wait_for(lock, std::chrono::duration<double>(*timeout_seconds),
                  terminal);
  }
  return t.state.load(std::memory_order_acquire);
}

const RequestOutcome& RequestHandle::outcome() const {
  Ticket& t = *ticket_;
  svo::detail::require(is_terminal(t.state.load(std::memory_order_acquire)),
                  "RequestHandle::outcome: ticket is not terminal (wait first)");
  return t.outcome;
}

FormationService::FormationService(const core::VoFormationMechanism& mechanism,
                                   ServiceOptions options)
    : options_((options.validate(), options)),
      mechanism_(mechanism),
      submitted_(registry_.counter("svc.submitted")),
      completed_(registry_.counter("svc.completed")),
      cancelled_(registry_.counter("svc.cancelled")),
      shed_(registry_.counter("svc.shed")),
      deferred_(registry_.counter("svc.deferred")),
      failed_(registry_.counter("svc.failed")),
      expired_(registry_.counter("svc.expired")),
      retries_(registry_.counter("svc.retries")),
      restarts_(registry_.counter("svc.restarts")),
      tick_aborts_(registry_.counter("svc.tick_aborts")),
      stalls_(registry_.counter("svc.stalls")),
      solver_runs_(registry_.counter("svc.solver_runs")),
      ticks_(registry_.counter("svc.ticks")),
      queue_us_(registry_.histogram("svc.queue_us")),
      solve_us_(registry_.histogram("svc.solve_us")),
      redelivery_depth_(registry_.histogram("svc.redelivery_depth")),
      paused_(options_.start_paused),
      pool_(options_.threads == 0 ? options_.shards : options_.threads) {
  // Shard ticks run the mechanism concurrently; ReputationCache is
  // single-threaded by contract, so a cache-carrying mechanism would
  // race on every full-graph compute. Per-thread incremental reuse
  // belongs in sim::StreamEngine's per-request caches, not here.
  svo::detail::require(
      mechanism.config().reputation.cache == nullptr,
      "FormationService: mechanism must not carry a ReputationCache "
      "(shards run concurrently; the cache is not thread-safe)");
  for (const SolverFault& f : options_.faults.solver_faults) {
    solver_faults_by_ticket_.emplace(f.ticket, f.attempts);
  }
  for (const TickFault& f : options_.faults.tick_faults) {
    tick_faults_by_ticket_.emplace(f.ticket, f);
  }
  shards_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(
        i, registry_, "svc.shard" + std::to_string(i)));
  }
  if (options_.stats_window_seconds > 0.0) {
    telemetry_ = std::make_unique<Telemetry>(registry_, options_);
    if (!options_.stats_jsonl_path.empty()) {
      telemetry_->jsonl.open(options_.stats_jsonl_path,
                             std::ios::out | std::ios::trunc);
      svo::detail::require(telemetry_->jsonl.is_open(),
                      "ServiceOptions: cannot open stats_jsonl_path");
    }
  }
}

FormationService::~FormationService() {
  // Everything admitted must reach a terminal state before the pool
  // joins — handles outliving the service still resolve.
  resume();
  drain();
  if (telemetry_) {
    // Flush the tail: close any due windows plus one final partial one
    // so the JSONL feed and SLO accounting cover the whole run.
    maybe_sample();
    std::lock_guard<std::mutex> lock(telemetry_->mu);
    const double now = clock_.seconds();
    if (now > telemetry_->next_window_end - telemetry_->window_seconds) {
      const obs::Window& w = telemetry_->series.advance(now);
      telemetry_->slo.evaluate(w);
      if (telemetry_->jsonl.is_open()) {
        obs::write_window_jsonl(telemetry_->jsonl, w);
        telemetry_->jsonl << '\n';
      }
    }
  }
}

RequestHandle FormationService::submit(const core::FormationRequest& request,
                                       std::size_t routing_key) {
  // Typed scheduling-metadata validation (ServiceOptions style): reject
  // nonsense before a ticket id is burned.
  svo::detail::require(
      !std::isnan(request.deadline_seconds) && request.deadline_seconds >= 0.0,
      "FormationRequest: deadline_seconds must be >= 0 (or infinity)");
  svo::detail::require(
      request.max_retries <= ServiceOptions::kMaxRetryBudget,
      "FormationRequest: max_retries exceeds ServiceOptions::kMaxRetryBudget");

  const std::uint64_t id =
      next_ticket_.fetch_add(1, std::memory_order_relaxed);
  auto ticket = std::make_shared<Ticket>();
  ticket->id = id;
  ticket->service = this;
  ticket->instance = &request.instance;
  ticket->trust = &request.trust;
  ticket->rng = request.rng;  // state snapshot; the caller's RNG is
                              // never advanced by the service
  ticket->candidates = request.candidates;
  ticket->warm = request.warm_start;
  ticket->priority = request.priority;
  ticket->max_retries = request.max_retries;
  ticket->outcome.ticket = id;

  // Stamp this ticket's injected faults (pure function of the plan and
  // the ticket id, so chaotic replays strike identically).
  if (const auto it = solver_faults_by_ticket_.find(id);
      it != solver_faults_by_ticket_.end()) {
    ticket->injected_failures = it->second;
  }
  if (const auto it = tick_faults_by_ticket_.find(id);
      it != tick_faults_by_ticket_.end()) {
    ticket->has_tick_fault = true;
    ticket->tick_fault_kind = it->second.kind;
    ticket->tick_fault_stall = it->second.stall_seconds;
  }

  // Deterministic routing: a pure function of (routing key | ticket id)
  // and the shard count — same-seed replays land every request on the
  // same shard.
  const std::size_t shard_index =
      (routing_key == SIZE_MAX ? id : routing_key) % options_.shards;
  ticket->shard = shard_index;
  ticket->outcome.shard = shard_index;
  Shard& shard = *shards_[shard_index];

  bool admitted = false;
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.queue.size() < options_.queue_capacity) {
      admitted = true;
      ticket->admitted.reset();
      const double now = clock_.seconds();
      ticket->deadline_at = now + request.deadline_seconds;  // inf stays inf
      shard.queue.insert(ticket);
      shard.depth.add(1.0);
      outstanding_.fetch_add(1, std::memory_order_relaxed);
      if (!paused_.load() && !shard.tick_scheduled && !shard.killed) {
        shard.tick_scheduled = true;
        schedule = true;
      }
    }
  }
  if (!admitted) {
    // Batched admission control: reject at the door, before any solver
    // work. Shed is terminal-dropped; Deferred is terminal-retryable.
    const TicketState state = options_.overload == OverloadPolicy::Shed
                                  ? TicketState::Shed
                                  : TicketState::Deferred;
    (state == TicketState::Shed ? shed_ : deferred_).add();
    {
      std::lock_guard<std::mutex> lock(ticket->mu);
      ticket->outcome.state = state;
      ticket->state.store(state, std::memory_order_release);
    }
    ticket->cv.notify_all();
    return RequestHandle(std::move(ticket));
  }
  submitted_.add();
  if (schedule) schedule_tick(shard);
  return RequestHandle(std::move(ticket));
}

bool FormationService::cancel_ticket(
    const std::shared_ptr<detail::Ticket>& ticket) {
  Ticket& t = *ticket;
  {
    std::lock_guard<std::mutex> lock(t.mu);
    if (t.state.load(std::memory_order_acquire) != TicketState::Queued) {
      return false;  // dispatched, already terminal, or lost the race
    }
    // Queued covers both never-dispatched tickets and tickets parked
    // between a failed attempt and their scheduled retry — in both
    // cases the cancel wins and the solver never runs (again).
    cancelled_.add();  // accounted before the terminal publication
    t.outcome.state = TicketState::Cancelled;
    t.outcome.attempts = t.attempts;
    t.state.store(TicketState::Cancelled, std::memory_order_release);
  }
  t.cv.notify_all();
  // Pull the carcass out of its shard's queue so a parked retry cannot
  // keep the shard's tick loop alive. Racing ticks are fine either way:
  // a tick that pops it first observes the terminal state and skips it.
  {
    Shard& shard = *shards_[t.shard];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [lo, hi] = shard.queue.equal_range(ticket);
    for (auto it = lo; it != hi; ++it) {
      if (it->get() == &t) {
        shard.queue.erase(it);
        shard.depth.add(-1.0);
        break;
      }
    }
  }
  note_terminal();
  return true;
}

void FormationService::resume() {
  paused_.store(false);
  // Wake every shard that accumulated work while paused. Safe against
  // racing submits: either they see paused_ == false and schedule, or
  // this pass sees their enqueued ticket (mutex ordering).
  for (const auto& shard : shards_) {
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      if (!shard->queue.empty() && !shard->tick_scheduled && !shard->killed) {
        shard->tick_scheduled = true;
        schedule = true;
      }
    }
    if (schedule) schedule_tick(*shard);
  }
}

void FormationService::drain() {
  svo::detail::require(!paused_.load(),
                  "FormationService::drain: service is paused (resume first)");
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [this] {
    return outstanding_.load(std::memory_order_acquire) == 0;
  });
}

void FormationService::note_terminal() {
  if (outstanding_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    // Notify under the lock so a drain() between its predicate check
    // and wait cannot miss the wakeup.
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

void FormationService::schedule_tick(Shard& shard) {
  // Message-driven execution: a tick is a short-lived pool task, not a
  // parked thread — at most one per shard (tick_scheduled), so a pool
  // smaller than the shard count still serves every shard.
  auto ignored = pool_.submit([this, &shard] { run_tick(shard); });
  (void)ignored;  // completion is tracked per ticket, not per tick
}

void FormationService::restart_shard(Shard& shard) {
  // The supervisor path: the killed worker is gone (its tick returned
  // without rescheduling); a fresh pool task detects the kill, brings
  // the shard back with its queue intact, and reschedules its tick.
  auto ignored = pool_.submit([this, &shard] {
    bool schedule = false;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.killed = false;
      if (!shard.queue.empty() && !paused_.load() && !shard.tick_scheduled) {
        shard.tick_scheduled = true;
        schedule = true;
      }
    }
    restarts_.add();
    shard.restarts.add();
    if (schedule) schedule_tick(shard);
  });
  (void)ignored;
}

void FormationService::run_tick(Shard& shard) {
  obs::Span tick_span("svc.shard.tick", "svc");
  if (tick_span.active()) {
    tick_span.arg("shard", static_cast<double>(shard.index));
  }
  // Drain up to batch_size tickets in (priority, deadline, admission)
  // order. Expired tickets are always eligible (they terminate without
  // a solve); unexpired tickets still inside their retry backoff are
  // skipped, and `earliest_ready` remembers when to look again.
  std::vector<std::shared_ptr<Ticket>> batch;
  double earliest_ready = std::numeric_limits<double>::infinity();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const double now = clock_.seconds();
    auto it = shard.queue.begin();
    while (it != shard.queue.end() && batch.size() < options_.batch_size) {
      Ticket& t = **it;
      if (t.deadline_at > now && t.ready_at > now) {
        earliest_ready = std::min(earliest_ready, t.ready_at);
        ++it;
        continue;
      }
      batch.push_back(*it);
      it = shard.queue.erase(it);
    }
    if (!batch.empty()) {
      shard.depth.add(-static_cast<double>(batch.size()));
    }
  }
  ticks_.add();
  shard.ticks.add();
  if (tick_span.active()) {
    tick_span.arg("batch", static_cast<double>(batch.size()));
  }

  // Injected tick faults, keyed by the tickets this batch carries and
  // fired exactly once per ticket. A stall delays the whole batch (the
  // straggler tick); an abort kills the shard before any of the batch
  // runs — the batch goes back intact and the supervisor restarts us.
  bool abort_tick = false;
  double stall_seconds = 0.0;
  for (const std::shared_ptr<Ticket>& ticket : batch) {
    if (!ticket->has_tick_fault || ticket->tick_fault_fired) continue;
    ticket->tick_fault_fired = true;  // owned by this (single) tick
    if (ticket->tick_fault_kind == TickFaultKind::Abort) {
      abort_tick = true;
    } else {
      stall_seconds = ticket->tick_fault_stall;
    }
    // At most one tick fault fires per tick: an aborted batch is
    // re-queued and re-popped, so any other marked ticket strikes a
    // *later* tick — fault counts stay independent of how tickets
    // happen to group into batches (the replay-identical invariant).
    break;
  }
  if (stall_seconds > 0.0) {
    stalls_.add();
    std::this_thread::sleep_for(std::chrono::duration<double>(stall_seconds));
  }
  if (abort_tick) {
    tick_aborts_.add();
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.depth.add(static_cast<double>(batch.size()));
      for (std::shared_ptr<Ticket>& ticket : batch) {
        shard.queue.insert(std::move(ticket));  // preserved, not lost
      }
      shard.killed = true;
      shard.tick_scheduled = false;  // the worker is dead
    }
    restart_shard(shard);
    return;
  }

  for (const std::shared_ptr<Ticket>& ticket : batch) {
    Ticket& t = *ticket;
    const double now = clock_.seconds();
    if (t.deadline_at <= now) {
      // Deadline-aware scheduling: expire *before* wasting a solve.
      std::lock_guard<std::mutex> lock(t.mu);
      if (t.state.load(std::memory_order_acquire) != TicketState::Queued) {
        continue;  // cancelled while queued
      }
      expired_.add();
      shard.expired.add();
      t.outcome.state = TicketState::DeadlineExceeded;
      t.outcome.attempts = t.attempts;
      t.outcome.queue_seconds = t.admitted.seconds();
      t.state.store(TicketState::DeadlineExceeded, std::memory_order_release);
      t.cv.notify_all();
      note_terminal();
      continue;
    }
    {
      std::lock_guard<std::mutex> lock(t.mu);
      if (t.state.load(std::memory_order_acquire) != TicketState::Queued) {
        continue;  // cancelled while queued: its solver never runs
      }
      t.state.store(TicketState::Running, std::memory_order_release);
    }
    const double queue_seconds = t.admitted.seconds();
    ++t.attempts;
    if (t.outcome.dispatch_seq == 0) {
      t.outcome.dispatch_seq =
          next_dispatch_.fetch_add(1, std::memory_order_relaxed) + 1;
    }
    const util::WallTimer solve_timer;
    core::MechanismResult result;
    util::Xoshiro256 attempt_rng = t.rng;  // pristine snapshot per attempt
    bool attempt_ok = true;
    std::string attempt_error;
    {
      obs::Span solve_span("svc.request.solve", "svc");
      if (solve_span.active()) {
        solve_span.arg("ticket", static_cast<double>(t.id));
        solve_span.arg("shard", static_cast<double>(shard.index));
        solve_span.arg("attempt", static_cast<double>(t.attempts));
      }
      try {
        if (t.injected_failures == SolverFault::kPoison ||
            t.attempts <= t.injected_failures) {
          throw InjectedFault("injected solver fault (ticket " +
                              std::to_string(t.id) + ", attempt " +
                              std::to_string(t.attempts) + ")");
        }
        result = mechanism_.run(core::FormationRequest{
            *t.instance, *t.trust, attempt_rng, t.candidates, t.warm});
      } catch (const std::exception& e) {
        attempt_ok = false;
        attempt_error = e.what();
      }
    }
    const double solve_seconds = solve_timer.seconds();
    // All accounting happens-before the terminal publication: a waiter
    // woken by the state change must already see consistent stats().
    solver_runs_.add();

    if (!attempt_ok) {
      if (t.attempts <= t.max_retries) {
        // Budget left: park the ticket back in its queue with capped
        // exponential backoff. State returns to Queued *before* the
        // re-insert, so a cancel landing between this failed attempt
        // and the retry finds a cancellable ticket and wins.
        retries_.add();
        shard.retries.add();
        redelivery_depth_.observe(static_cast<double>(t.attempts));
        const double backoff = std::min(
            options_.retry_backoff_cap_seconds,
            options_.retry_backoff_base_seconds *
                static_cast<double>(1ULL << std::min<std::uint32_t>(
                                        t.attempts - 1, 62)));
        {
          std::lock_guard<std::mutex> lock(t.mu);
          t.state.store(TicketState::Queued, std::memory_order_release);
        }
        {
          // Re-check under the shard lock: a cancel that landed between
          // the state flip above and this insert already finalized the
          // ticket (and found nothing to erase) — don't resurrect it.
          std::lock_guard<std::mutex> lock(shard.mu);
          if (t.state.load(std::memory_order_acquire) ==
              TicketState::Queued) {
            t.ready_at = clock_.seconds() + backoff;
            shard.queue.insert(ticket);  // retries bypass admission control
            shard.depth.add(1.0);
          }
        }
        continue;
      }
      // Budget exhausted: typed terminal failure, never a hung handle.
      failed_.add();
      redelivery_depth_.observe(static_cast<double>(t.attempts));
      {
        std::lock_guard<std::mutex> lock(t.mu);
        t.outcome.state = TicketState::Failed;
        t.outcome.attempts = t.attempts;
        t.outcome.error = std::move(attempt_error);
        t.outcome.queue_seconds = queue_seconds;
        t.outcome.solve_seconds = solve_seconds;
        t.state.store(TicketState::Failed, std::memory_order_release);
      }
      t.cv.notify_all();
      note_terminal();
      continue;
    }

    shard.solved.add();
    queue_us_.observe(queue_seconds * 1e6);
    solve_us_.observe(solve_seconds * 1e6);
    completed_.add();
    {
      std::lock_guard<std::mutex> lock(t.mu);
      t.outcome.result = std::move(result);
      t.outcome.rng_probe = attempt_rng();  // determinism probe: post-run
      t.outcome.attempts = t.attempts;
      t.outcome.queue_seconds = queue_seconds;
      t.outcome.solve_seconds = solve_seconds;
      t.outcome.state = TicketState::Done;
      t.state.store(TicketState::Done, std::memory_order_release);
    }
    t.cv.notify_all();
    note_terminal();
  }

  // Telemetry sampler rides the tick loop: no timer thread, and a
  // telemetry-off service pays one null-pointer test here.
  maybe_sample();

  // Yield the pool thread between batches; reschedule only while work
  // remains (and keep tick_scheduled true across the hand-off so a
  // racing submit cannot double-schedule). When everything pending is
  // parked in retry backoff, nap until the earliest ready time so the
  // hand-off loop stays cool without a timer thread.
  bool more = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.queue.empty() && !paused_.load() && !shard.killed) {
      more = true;
    } else {
      shard.tick_scheduled = false;
    }
  }
  if (more) {
    if (batch.empty() && std::isfinite(earliest_ready)) {
      const double nap =
          std::clamp(earliest_ready - clock_.seconds(), 0.0, 0.002);
      if (nap > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      }
    }
    schedule_tick(shard);
  }
}

void FormationService::maybe_sample() {
  if (!telemetry_) return;  // the entire telemetry-off cost
  Telemetry& tel = *telemetry_;
  std::unique_lock<std::mutex> lock(tel.mu, std::try_to_lock);
  if (!lock.owns_lock()) return;  // another tick is sampling; skip
  const double now = clock_.seconds();
  while (now >= tel.next_window_end) {
    const obs::Window& w = tel.series.advance(tel.next_window_end);
    tel.slo.evaluate(w);
    if (tel.jsonl.is_open()) {
      obs::write_window_jsonl(tel.jsonl, w);
      tel.jsonl << '\n';
    }
    tel.next_window_end += tel.window_seconds;
  }
}

ServiceHealth FormationService::health(std::size_t last_n) {
  maybe_sample();
  ServiceHealth h;
  h.now_seconds = clock_.seconds();
  h.telemetry_enabled = telemetry_ != nullptr;
  h.outstanding = outstanding_.load(std::memory_order_acquire);
  h.shards.reserve(shards_.size());
  bool any_full = false;
  for (const auto& shard : shards_) {
    ShardHealth sh;
    sh.index = shard->index;
    {
      std::lock_guard<std::mutex> lock(shard->mu);
      sh.queue_depth = shard->queue.size();
      sh.killed = shard->killed;
    }
    sh.ticks = shard->ticks.value();
    sh.solved = shard->solved.value();
    sh.retries = shard->retries.value();
    sh.expired = shard->expired.value();
    sh.restarts = shard->restarts.value();
    any_full = any_full || sh.queue_depth >= options_.queue_capacity;
    h.shards.push_back(sh);
  }
  bool recent_rejects = false;
  if (telemetry_) {
    std::lock_guard<std::mutex> lock(telemetry_->mu);
    h.windows_closed = telemetry_->series.windows_closed();
    const obs::Window roll = telemetry_->series.rollup(last_n);
    const obs::Histogram::Snapshot queue = roll.histogram("svc.queue_us");
    const obs::Histogram::Snapshot solve = roll.histogram("svc.solve_us");
    h.queue_p50_us = queue.quantile(0.50);
    h.queue_p99_us = queue.quantile(0.99);
    h.solve_p50_us = solve.quantile(0.50);
    h.solve_p99_us = solve.quantile(0.99);
    h.slos = telemetry_->slo.status();
    recent_rejects =
        roll.counter("svc.shed") + roll.counter("svc.deferred") > 0;
  } else {
    const obs::Histogram::Snapshot queue = queue_us_.snapshot();
    const obs::Histogram::Snapshot solve = solve_us_.snapshot();
    h.queue_p50_us = queue.quantile(0.50);
    h.queue_p99_us = queue.quantile(0.99);
    h.solve_p50_us = solve.quantile(0.50);
    h.solve_p99_us = solve.quantile(0.99);
  }
  h.overloaded = any_full || recent_rejects;
  return h;
}

ServiceStats FormationService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.value();
  s.completed = completed_.value();
  s.cancelled = cancelled_.value();
  s.shed = shed_.value();
  s.deferred = deferred_.value();
  s.failed = failed_.value();
  s.expired = expired_.value();
  s.retries = retries_.value();
  s.restarts = restarts_.value();
  s.tick_aborts = tick_aborts_.value();
  s.stalls = stalls_.value();
  s.solver_runs = solver_runs_.value();
  s.ticks = ticks_.value();
  const obs::Histogram::Snapshot queue = queue_us_.snapshot();
  const obs::Histogram::Snapshot solve = solve_us_.snapshot();
  const obs::Histogram::Snapshot redelivery = redelivery_depth_.snapshot();
  s.queue_p50_us = queue.quantile(0.50);
  s.queue_p99_us = queue.quantile(0.99);
  s.solve_p50_us = solve.quantile(0.50);
  s.solve_p99_us = solve.quantile(0.99);
  s.redelivery_max = redelivery.max;
  return s;
}

}  // namespace svo::svc
