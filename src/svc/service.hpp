/// \file service.hpp
/// Formation-as-a-service: a long-running, sharded, batched asynchronous
/// request engine over the synchronous core mechanism (DESIGN.md §4g),
/// chaos-hardened against its own failure modes (§4h).
///
/// The paper forms one VO per call; the north-star system is a
/// multi-tenant service admitting millions of queued formation requests.
/// svc::FormationService is that service core:
///
///   submit(FormationRequest) ──► bounded per-shard queue ──► shard tick
///        (RequestHandle)             (admission control)    (drains ≤ B,
///                                                            runs solver)
///
///  - N independent *shards*, partitioned per-market / per-trust-domain
///    by a deterministic routing key (default: ticket id modulo N), each
///    with its own bounded submission queue, accounting state and stable
///    obs metric references. A shard drains its queue by (priority desc,
///    deadline asc, admission order), one batch ("tick") at a time —
///    shard-internal execution is single-threaded by construction, so
///    per-shard order is a guarantee, not a scheduling accident. With
///    every request at default priority/deadline the order is exactly
///    admission order (the PR 7 FIFO).
///  - Ticks are message-driven tasks on a util::ThreadPool (the oneflow
///    vm-scheduler idiom: explicit object lifetimes, no long-running
///    blocked threads): enqueueing into an idle shard schedules exactly
///    one tick; a tick drains up to ServiceOptions::batch_size tickets,
///    runs them, and reschedules itself only while work remains, so a
///    pool smaller than the shard count still makes progress everywhere.
///  - Batched admission control: a full shard queue sheds (terminal
///    Shed) or defers (terminal Deferred — "retry later", the caller
///    owns the backoff) according to ServiceOptions::overload. Both are
///    decided at submit time, before any solver work. Internal retries
///    of already-admitted tickets bypass the capacity check: admitted
///    work is never lost to its own backoff.
///
/// Degradation contract (§4h): requests carry an optional deadline,
/// priority and retry budget (core::FormationRequest). A request still
/// queued past its deadline terminates as DeadlineExceeded *before* any
/// solve. A failed solve — injected by a FaultPlan or a genuine throw —
/// retries with capped exponential backoff up to the request's budget,
/// each attempt from the pristine admission-time RNG snapshot; an
/// exhausted budget terminates as Failed with the error preserved. A
/// killed shard (FaultPlan tick abort) is detected and restarted with
/// its queue intact. Every admitted ticket reaches a terminal state —
/// across shard crashes, solver throws and stalls — and the retry /
/// expiry / restart traffic is accounted in the service and per-shard
/// obs metrics.
///
/// Determinism contract: a ticket's outcome is a pure function of its
/// request (instance, trust, RNG *snapshot*, candidates, policy) and the
/// fault plan — the service copies the caller's RNG state at submit and
/// never advances the caller's generator — and routing is a pure
/// function of (ticket id, routing key, shard count). Faults are keyed
/// by ticket id, so same-seed chaotic replays produce bit-identical
/// per-ticket results (state, attempts, RNG probe) at any shard/thread
/// count; with the plan empty the service is bit-identical to the
/// un-chaosed PR 7 behaviour, and a single-shard service is bit-identical
/// to calling core::VoFormationMechanism::run(FormationRequest) directly
/// (tests/svc pin all three, RNG probe included).
///
/// Lifetime: the referenced mechanism, instance and trust graph must
/// outlive every ticket that uses them. The service owns its pool;
/// destruction resumes (if paused), drains all admitted tickets, and
/// joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/mechanism.hpp"
#include "obs/metrics.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "svc/fault_plan.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace svo::svc {

/// Lifecycle of one submitted request. Terminal states are exactly
/// {Done, Cancelled, Shed, Deferred, Failed, DeadlineExceeded};
/// Queued/Running are transient.
enum class TicketState : int {
  Queued,     ///< admitted, waiting in its shard's queue (or in backoff)
  Running,    ///< a shard tick is executing the mechanism
  Done,       ///< mechanism ran; RequestOutcome::result is valid
  Cancelled,  ///< cancel() won before dispatch — the solver never ran
  Shed,       ///< rejected at submit: shard queue full (overload=Shed)
  Deferred,   ///< rejected at submit, retryable (overload=Defer)
  Failed,     ///< every attempt threw; RequestOutcome::error says why
  DeadlineExceeded,  ///< expired in queue before a solve could start
};

[[nodiscard]] const char* to_string(TicketState state) noexcept;
[[nodiscard]] constexpr bool is_terminal(TicketState s) noexcept {
  return s != TicketState::Queued && s != TicketState::Running;
}

/// What to do with a submission when its shard's queue is at capacity.
enum class OverloadPolicy {
  Shed,   ///< reject terminally; the request is dropped
  Defer,  ///< reject retryably; the caller re-submits after backoff
};

/// Service configuration. Mirrors sim::StreamOptions::validate() style:
/// construction of a FormationService validates and throws
/// InvalidArgument ("ServiceOptions: ...") on nonsense.
struct ServiceOptions {
  /// Upper bound accepted for FormationRequest::max_retries — bounds
  /// the worst-case backoff chain of a poisoned request.
  static constexpr std::uint32_t kMaxRetryBudget = 32;

  /// Independent mechanism shards (per-market / per-trust-domain
  /// partitions). 1 = the bit-identical-to-direct-run mode.
  std::size_t shards = 1;
  /// Bounded submission-queue capacity *per shard*; admission control
  /// sheds/defers beyond it (internal retries are exempt).
  std::size_t queue_capacity = 256;
  /// Tickets drained per shard tick. A tick runs its whole batch before
  /// yielding the pool thread, amortizing scheduling over B solves.
  std::size_t batch_size = 16;
  /// Worker threads in the service's pool; 0 = one per shard.
  std::size_t threads = 0;
  /// Full-queue behaviour.
  OverloadPolicy overload = OverloadPolicy::Shed;
  /// Construct with ticks suspended: submissions queue (and shed/defer
  /// exactly at capacity) but nothing dispatches until resume(). Gives
  /// tests and benches deterministic queue-full and cancel-before-
  /// dispatch setups; production services leave this false.
  bool start_paused = false;
  /// Backoff before retry attempt k (1-based re-attempt): base * 2^(k-1)
  /// wall seconds, capped below.
  double retry_backoff_base_seconds = 0.0005;
  /// Upper bound on any single retry backoff.
  double retry_backoff_cap_seconds = 0.050;
  /// Deterministic chaos injection (fault_plan.hpp). Empty = no faults,
  /// the bit-identical-to-PR 7 regime.
  FaultPlan faults;

  /// Continuous telemetry (DESIGN.md §4j): > 0 closes a metrics window
  /// every this-many wall seconds on the service clock, sampled from
  /// the tick loop. 0 (default) = telemetry off — the sampler is never
  /// constructed, the hot path gains zero atomics, and outcomes/RNG
  /// probes are bit-identical to a telemetry-on run (tests pin this).
  double stats_window_seconds = 0.0;
  /// Window ring capacity (oldest evicted beyond it).
  std::size_t stats_window_capacity = 64;
  /// Objectives evaluated against every closed window; verdicts are
  /// surfaced as slo.* metrics in the service registry. Requires
  /// telemetry on when non-empty.
  std::vector<obs::SloObjective> slos;
  /// Non-empty: append every closed window to this file as JSONL
  /// (obs::write_window_jsonl). Requires telemetry on.
  std::string stats_jsonl_path;

  /// Throws InvalidArgument on: zero shards, zero queue capacity, zero
  /// batch size, batch size above queue capacity, negative / non-finite
  /// backoff, a backoff cap below the base, an invalid fault plan, a
  /// negative / non-finite stats window, a zero window capacity, SLOs
  /// or a JSONL path with telemetry off, or an invalid SLO objective.
  void validate() const;
};

/// Terminal record of one ticket.
struct RequestOutcome {
  std::uint64_t ticket = 0;
  std::size_t shard = 0;
  TicketState state = TicketState::Queued;
  /// Mechanism outcome; meaningful only when state == Done.
  core::MechanismResult result;
  /// One draw from the ticket's RNG *after* the run — the determinism
  /// probe: equals rng() after an equivalent direct run() on a generator
  /// seeded identically. 0 unless state == Done.
  std::uint64_t rng_probe = 0;
  /// Solve attempts executed (1 + retries taken); 0 when the solver
  /// never ran (cancelled / shed / deferred / expired before dispatch).
  std::uint32_t attempts = 0;
  /// 1-based service-wide dispatch order of the first solve attempt; 0
  /// when the solver never ran. Deterministic for a single-shard
  /// service (drain-order observability); diagnostic across shards.
  std::uint64_t dispatch_seq = 0;
  /// Failure description (meaningful when state == Failed).
  std::string error;
  /// Admission -> final dispatch wall seconds, retry backoff included
  /// (0 for shed/deferred tickets).
  double queue_seconds = 0.0;
  /// Dispatch -> completion wall seconds (solver time; Done only).
  double solve_seconds = 0.0;
};

namespace detail {
struct Ticket;
}  // namespace detail

/// Caller's view of one submitted request: a ticket id plus poll / wait
/// / cancel. Copyable (shared state); all members are thread-safe.
class RequestHandle {
 public:
  /// Service-unique ticket id, dense in submission order.
  [[nodiscard]] std::uint64_t id() const noexcept;
  /// Shard the ticket routed to.
  [[nodiscard]] std::size_t shard() const noexcept;
  /// Current state, without blocking.
  [[nodiscard]] TicketState poll() const noexcept;
  /// True once poll() would return a terminal state.
  [[nodiscard]] bool done() const noexcept { return is_terminal(poll()); }
  /// Cancel if still queued (including between a failed attempt and its
  /// scheduled retry — the cancel wins and the retry never dispatches).
  /// True iff *this call* transitioned the ticket Queued -> Cancelled;
  /// false when dispatch (or a racing cancel, or shed/defer at submit)
  /// won. A cancelled ticket's solver never runs again.
  bool cancel() const;
  /// Block until the ticket is terminal, or until `timeout_seconds`
  /// elapses (std::nullopt = wait forever). Returns the state observed
  /// when the wait ended: terminal iff the ticket resolved in time;
  /// Queued / Running mean the timeout expired first and the handle is
  /// still live (a stalled shard can no longer wedge a bounded caller).
  TicketState wait(std::optional<double> timeout_seconds = std::nullopt) const;
  /// Terminal outcome (stable reference, valid for the shared state's
  /// lifetime — it outlives the service). Throws InvalidArgument until
  /// poll() is terminal; wait() first.
  [[nodiscard]] const RequestOutcome& outcome() const;

 private:
  friend class FormationService;
  explicit RequestHandle(std::shared_ptr<detail::Ticket> ticket)
      : ticket_(std::move(ticket)) {}
  std::shared_ptr<detail::Ticket> ticket_;
};

/// Aggregate accounting snapshot (stats()); latency quantiles come from
/// the service's obs histograms (log2 buckets, factor-2 bound — see
/// obs::Histogram::Snapshot::quantile).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< admitted into a queue
  std::uint64_t completed = 0;  ///< reached Done
  std::uint64_t cancelled = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t failed = 0;     ///< retry budget exhausted (terminal)
  std::uint64_t expired = 0;    ///< DeadlineExceeded before a solve
  std::uint64_t retries = 0;    ///< re-attempts scheduled after failures
  std::uint64_t restarts = 0;   ///< killed shards detected + restarted
  std::uint64_t tick_aborts = 0;  ///< injected shard kills
  std::uint64_t stalls = 0;       ///< injected straggler ticks
  std::uint64_t solver_runs = 0;  ///< mechanism attempts (incl. failed)
  std::uint64_t ticks = 0;        ///< shard batch executions
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  double solve_p50_us = 0.0;
  double solve_p99_us = 0.0;
  /// Deepest redelivery observed: max attempts of any retried ticket.
  double redelivery_max = 0.0;
};

/// Live per-shard introspection (health()).
struct ShardHealth {
  std::size_t index = 0;
  std::size_t queue_depth = 0;  ///< tickets queued (incl. retry-parked)
  bool killed = false;          ///< between a fault-plan abort and restart
  std::uint64_t ticks = 0;
  std::uint64_t solved = 0;
  std::uint64_t retries = 0;
  std::uint64_t expired = 0;
  std::uint64_t restarts = 0;
};

/// Point-in-time operational snapshot (health()): per-shard depths,
/// latency quantiles over the last N telemetry windows (cumulative when
/// telemetry is off), SLO verdicts, and an overload verdict. This is
/// the "is the service healthy right now" API the end-of-run stats()
/// cannot answer.
struct ServiceHealth {
  double now_seconds = 0.0;       ///< service-clock reading
  bool telemetry_enabled = false;
  std::uint64_t outstanding = 0;  ///< admitted, not yet terminal
  std::uint64_t windows_closed = 0;
  /// Quantiles over the rollup of the last N windows when telemetry is
  /// on; over the cumulative run otherwise (factor-2 log2-bucket bound
  /// either way).
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  double solve_p50_us = 0.0;
  double solve_p99_us = 0.0;
  std::vector<ShardHealth> shards;
  std::vector<obs::SloStatus> slos;
  /// True when any shard queue is at capacity, or (telemetry on) the
  /// rollup window saw shed/deferred admissions.
  bool overloaded = false;
};

/// The service core. Thread-safe: submit/cancel/poll/wait/stats may be
/// called concurrently from any thread.
class FormationService {
 public:
  /// `mechanism` must outlive the service (its run() is const and
  /// thread-safe, so one instance serves every shard). Validates
  /// `options`.
  explicit FormationService(const core::VoFormationMechanism& mechanism,
                            ServiceOptions options = {});
  /// Resumes (if paused), drains every admitted ticket, joins the pool.
  ~FormationService();

  FormationService(const FormationService&) = delete;
  FormationService& operator=(const FormationService&) = delete;

  /// Submit one formation request. Copies request.rng's *state* (the
  /// caller's generator is not advanced) and request.candidates; the
  /// instance and trust graph are captured by reference and must stay
  /// alive until the ticket is terminal. `routing_key` partitions the
  /// request space across shards (per-market / per-trust-domain);
  /// SIZE_MAX routes by ticket id. Never blocks on solver work: a full
  /// shard returns an already-terminal Shed/Deferred handle. Throws
  /// InvalidArgument ("FormationRequest: ...") on a NaN or negative
  /// deadline or a retry budget above ServiceOptions::kMaxRetryBudget.
  RequestHandle submit(const core::FormationRequest& request,
                       std::size_t routing_key = SIZE_MAX);

  /// Start dispatching when constructed with start_paused (idempotent).
  void resume();

  /// Block until every admitted ticket is terminal. Requires a resumed
  /// service (throws InvalidArgument if still paused — that wait would
  /// never end). New submissions during drain() extend it.
  void drain();

  [[nodiscard]] ServiceStats stats() const;

  /// Operational snapshot: samples any due telemetry windows first,
  /// then reads shard depths, rollup quantiles over the newest
  /// min(last_n, closed) windows, and SLO state. Safe to call
  /// concurrently with everything else.
  [[nodiscard]] ServiceHealth health(std::size_t last_n = 8);

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// The service-local metric registry (svc.* counters/histograms,
  /// svc.shard<i>.* per-shard counters) — same local-registry pattern
  /// as core::ProtocolMetrics.
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return registry_;
  }

 private:
  friend class RequestHandle;  // cancel routes through cancel_ticket

  struct Shard;

  void schedule_tick(Shard& shard);
  void run_tick(Shard& shard);
  /// Telemetry sampler hook: closes every window whose end has passed
  /// on the service clock (no-op — one pointer branch, no atomics —
  /// when telemetry is off). Contended calls skip rather than queue:
  /// some later tick closes the window, losing nothing.
  void maybe_sample();
  /// Supervisor path: a killed shard is brought back on a fresh pool
  /// task — queue intact, restart accounted — and its tick rescheduled.
  void restart_shard(Shard& shard);
  bool cancel_ticket(const std::shared_ptr<detail::Ticket>& ticket);
  /// One admitted ticket reached a terminal state (drain bookkeeping).
  void note_terminal();

  ServiceOptions options_;
  const core::VoFormationMechanism& mechanism_;

  /// Fault-plan lookups by ticket id, built once at construction so a
  /// million-request soak pays O(1) per submit.
  std::unordered_map<std::uint64_t, std::uint32_t> solver_faults_by_ticket_;
  std::unordered_map<std::uint64_t, TickFault> tick_faults_by_ticket_;

  mutable obs::MetricRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& cancelled_;
  obs::Counter& shed_;
  obs::Counter& deferred_;
  obs::Counter& failed_;
  obs::Counter& expired_;
  obs::Counter& retries_;
  obs::Counter& restarts_;
  obs::Counter& tick_aborts_;
  obs::Counter& stalls_;
  obs::Counter& solver_runs_;
  obs::Counter& ticks_;
  obs::Histogram& queue_us_;
  obs::Histogram& solve_us_;
  /// Attempt count of every retried ticket at each redelivery — the
  /// "how deep do retries go" distribution.
  obs::Histogram& redelivery_depth_;

  std::vector<std::unique_ptr<Shard>> shards_;

  /// Windowed-telemetry state; null when stats_window_seconds == 0, so
  /// the telemetry-off hot path pays exactly one pointer test.
  struct Telemetry;
  std::unique_ptr<Telemetry> telemetry_;

  std::atomic<bool> paused_;
  std::atomic<std::uint64_t> next_ticket_{0};
  std::atomic<std::uint64_t> next_dispatch_{0};
  /// Admitted-but-not-terminal tickets, for drain().
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  /// Service-relative clock: deadlines and retry ready-times are
  /// absolute seconds on this timer (monotonic, shared by every shard).
  util::WallTimer clock_;

  /// Last member: destroyed first, so in-flight ticks still see live
  /// shards/metrics while the pool drains during destruction.
  util::ThreadPool pool_;
};

}  // namespace svo::svc
