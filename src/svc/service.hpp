/// \file service.hpp
/// Formation-as-a-service: a long-running, sharded, batched asynchronous
/// request engine over the synchronous core mechanism (DESIGN.md §4g).
///
/// The paper forms one VO per call; the north-star system is a
/// multi-tenant service admitting millions of queued formation requests.
/// svc::FormationService is that service core:
///
///   submit(FormationRequest) ──► bounded per-shard queue ──► shard tick
///        (RequestHandle)             (admission control)    (drains ≤ B,
///                                                            runs solver)
///
///  - N independent *shards*, partitioned per-market / per-trust-domain
///    by a deterministic routing key (default: ticket id modulo N), each
///    with its own bounded submission queue, accounting state and stable
///    obs metric references. A shard processes its queue strictly in
///    admission order, one batch ("tick") at a time — shard-internal
///    execution is single-threaded by construction, so per-shard order
///    is a guarantee, not a scheduling accident.
///  - Ticks are message-driven tasks on a util::ThreadPool (the oneflow
///    vm-scheduler idiom: explicit object lifetimes, no long-running
///    blocked threads): enqueueing into an idle shard schedules exactly
///    one tick; a tick drains up to ServiceOptions::batch_size tickets,
///    runs them, and reschedules itself only while work remains, so a
///    pool smaller than the shard count still makes progress everywhere.
///  - Batched admission control: a full shard queue sheds (terminal
///    Shed) or defers (terminal Deferred — "retry later", the caller
///    owns the backoff) according to ServiceOptions::overload. Both are
///    decided at submit time, before any solver work.
///
/// Determinism contract: a ticket's outcome is a pure function of its
/// request (instance, trust, RNG *snapshot*, candidates, policy) — the
/// service copies the caller's RNG state at submit and never advances
/// the caller's generator — and routing is a pure function of (ticket
/// id, routing key, shard count). Thread interleaving can reorder
/// *completion* times, never outcomes: same-seed replays produce
/// bit-identical per-ticket results at any shard/thread count, and a
/// single-shard service is bit-identical to calling
/// core::VoFormationMechanism::run(FormationRequest) directly
/// (tests/svc/service_test.cpp pins both, RNG probe included).
///
/// Lifetime: the referenced mechanism, instance and trust graph must
/// outlive every ticket that uses them. The service owns its pool;
/// destruction resumes (if paused), drains all admitted tickets, and
/// joins.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/mechanism.hpp"
#include "obs/metrics.hpp"
#include "util/thread_pool.hpp"

namespace svo::svc {

/// Lifecycle of one submitted request. Terminal states are exactly
/// {Done, Cancelled, Shed, Deferred}; Queued/Running are transient.
enum class TicketState : int {
  Queued,     ///< admitted, waiting in its shard's queue
  Running,    ///< a shard tick is executing the mechanism
  Done,       ///< mechanism ran; RequestOutcome::result is valid
  Cancelled,  ///< cancel() won before dispatch — the solver never ran
  Shed,       ///< rejected at submit: shard queue full (overload=Shed)
  Deferred,   ///< rejected at submit, retryable (overload=Defer)
};

[[nodiscard]] const char* to_string(TicketState state) noexcept;
[[nodiscard]] constexpr bool is_terminal(TicketState s) noexcept {
  return s != TicketState::Queued && s != TicketState::Running;
}

/// What to do with a submission when its shard's queue is at capacity.
enum class OverloadPolicy {
  Shed,   ///< reject terminally; the request is dropped
  Defer,  ///< reject retryably; the caller re-submits after backoff
};

/// Service configuration. Mirrors sim::StreamOptions::validate() style:
/// construction of a FormationService validates and throws
/// InvalidArgument ("ServiceOptions: ...") on nonsense.
struct ServiceOptions {
  /// Independent mechanism shards (per-market / per-trust-domain
  /// partitions). 1 = the bit-identical-to-direct-run mode.
  std::size_t shards = 1;
  /// Bounded submission-queue capacity *per shard*; admission control
  /// sheds/defers beyond it.
  std::size_t queue_capacity = 256;
  /// Tickets drained per shard tick. A tick runs its whole batch before
  /// yielding the pool thread, amortizing scheduling over B solves.
  std::size_t batch_size = 16;
  /// Worker threads in the service's pool; 0 = one per shard.
  std::size_t threads = 0;
  /// Full-queue behaviour.
  OverloadPolicy overload = OverloadPolicy::Shed;
  /// Construct with ticks suspended: submissions queue (and shed/defer
  /// exactly at capacity) but nothing dispatches until resume(). Gives
  /// tests and benches deterministic queue-full and cancel-before-
  /// dispatch setups; production services leave this false.
  bool start_paused = false;

  /// Throws InvalidArgument on: zero shards, zero queue capacity, zero
  /// batch size, batch size above queue capacity.
  void validate() const;
};

/// Terminal record of one ticket.
struct RequestOutcome {
  std::uint64_t ticket = 0;
  std::size_t shard = 0;
  TicketState state = TicketState::Queued;
  /// Mechanism outcome; meaningful only when state == Done.
  core::MechanismResult result;
  /// One draw from the ticket's RNG *after* the run — the determinism
  /// probe: equals rng() after an equivalent direct run() on a generator
  /// seeded identically. 0 unless state == Done.
  std::uint64_t rng_probe = 0;
  /// Admission -> dispatch wall seconds (0 for shed/deferred tickets).
  double queue_seconds = 0.0;
  /// Dispatch -> completion wall seconds (solver time; Done only).
  double solve_seconds = 0.0;
};

namespace detail {
struct Ticket;
}  // namespace detail

/// Caller's view of one submitted request: a ticket id plus poll / wait
/// / cancel. Copyable (shared state); all members are thread-safe.
class RequestHandle {
 public:
  /// Service-unique ticket id, dense in submission order.
  [[nodiscard]] std::uint64_t id() const noexcept;
  /// Shard the ticket routed to.
  [[nodiscard]] std::size_t shard() const noexcept;
  /// Current state, without blocking.
  [[nodiscard]] TicketState poll() const noexcept;
  /// True once poll() would return a terminal state.
  [[nodiscard]] bool done() const noexcept { return is_terminal(poll()); }
  /// Cancel if still queued. True iff *this call* transitioned the
  /// ticket Queued -> Cancelled; false when dispatch (or a racing
  /// cancel, or shed/defer at submit) won. A cancelled ticket's solver
  /// never ran and never will.
  bool cancel() const;
  /// Block until terminal; returns the outcome (stable reference, valid
  /// for the shared state's lifetime — it outlives the service).
  [[nodiscard]] const RequestOutcome& wait() const;

 private:
  friend class FormationService;
  explicit RequestHandle(std::shared_ptr<detail::Ticket> ticket)
      : ticket_(std::move(ticket)) {}
  std::shared_ptr<detail::Ticket> ticket_;
};

/// Aggregate accounting snapshot (stats()); latency quantiles come from
/// the service's obs histograms (log2 buckets, factor-2 bound — see
/// obs::Histogram::Snapshot::quantile).
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< admitted into a queue
  std::uint64_t completed = 0;  ///< reached Done
  std::uint64_t cancelled = 0;
  std::uint64_t shed = 0;
  std::uint64_t deferred = 0;
  std::uint64_t solver_runs = 0;  ///< mechanism invocations (== completed)
  std::uint64_t ticks = 0;        ///< shard batch executions
  double queue_p50_us = 0.0;
  double queue_p99_us = 0.0;
  double solve_p50_us = 0.0;
  double solve_p99_us = 0.0;
};

/// The service core. Thread-safe: submit/cancel/poll/wait/stats may be
/// called concurrently from any thread.
class FormationService {
 public:
  /// `mechanism` must outlive the service (its run() is const and
  /// thread-safe, so one instance serves every shard). Validates
  /// `options`.
  explicit FormationService(const core::VoFormationMechanism& mechanism,
                            ServiceOptions options = {});
  /// Resumes (if paused), drains every admitted ticket, joins the pool.
  ~FormationService();

  FormationService(const FormationService&) = delete;
  FormationService& operator=(const FormationService&) = delete;

  /// Submit one formation request. Copies request.rng's *state* (the
  /// caller's generator is not advanced) and request.candidates; the
  /// instance and trust graph are captured by reference and must stay
  /// alive until the ticket is terminal. `routing_key` partitions the
  /// request space across shards (per-market / per-trust-domain);
  /// SIZE_MAX routes by ticket id. Never blocks on solver work: a full
  /// shard returns an already-terminal Shed/Deferred handle.
  RequestHandle submit(const core::FormationRequest& request,
                       std::size_t routing_key = SIZE_MAX);

  /// Start dispatching when constructed with start_paused (idempotent).
  void resume();

  /// Block until every admitted ticket is terminal. Requires a resumed
  /// service (throws InvalidArgument if still paused — that wait would
  /// never end). New submissions during drain() extend it.
  void drain();

  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }
  /// The service-local metric registry (svc.* counters/histograms,
  /// svc.shard<i>.* per-shard counters) — same local-registry pattern
  /// as core::ProtocolMetrics.
  [[nodiscard]] const obs::MetricRegistry& metrics() const noexcept {
    return registry_;
  }

 private:
  friend class RequestHandle;  // cancel routes through cancel_ticket

  struct Shard;

  void schedule_tick(Shard& shard);
  void run_tick(Shard& shard);
  bool cancel_ticket(detail::Ticket& ticket);
  /// One admitted ticket reached a terminal state (drain bookkeeping).
  void note_terminal();

  ServiceOptions options_;
  const core::VoFormationMechanism& mechanism_;

  mutable obs::MetricRegistry registry_;
  obs::Counter& submitted_;
  obs::Counter& completed_;
  obs::Counter& cancelled_;
  obs::Counter& shed_;
  obs::Counter& deferred_;
  obs::Counter& solver_runs_;
  obs::Counter& ticks_;
  obs::Histogram& queue_us_;
  obs::Histogram& solve_us_;

  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<bool> paused_;
  std::atomic<std::uint64_t> next_ticket_{0};
  /// Admitted-but-not-terminal tickets, for drain().
  std::atomic<std::uint64_t> outstanding_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  /// Last member: destroyed first, so in-flight ticks still see live
  /// shards/metrics while the pool drains during destruction.
  util::ThreadPool pool_;
};

}  // namespace svo::svc
