#include "core/centrality_vof.hpp"

#include <algorithm>
#include <limits>

#include "graph/centrality.hpp"

namespace svo::core {

const char* to_string(CentralityRule rule) noexcept {
  switch (rule) {
    case CentralityRule::Eigenvector: return "eigenvector";
    case CentralityRule::Degree: return "degree";
    case CentralityRule::Closeness: return "closeness";
    case CentralityRule::Betweenness: return "betweenness";
  }
  return "unknown";
}

CentralityVofMechanism::CentralityVofMechanism(
    const ip::AssignmentSolver& solver, CentralityRule rule,
    MechanismConfig config)
    : VoFormationMechanism(solver, config), rule_(rule) {}

std::string CentralityVofMechanism::name() const {
  return std::string("CVOF-") + to_string(rule_);
}

std::size_t CentralityVofMechanism::choose_removal(
    const trust::TrustGraph& trust, const std::vector<std::size_t>& members,
    const std::vector<double>& scores, util::Xoshiro256& rng) const {
  std::vector<double> centrality;
  if (rule_ == CentralityRule::Eigenvector) {
    centrality = scores;  // already the recomputed reputation
  } else {
    // Induced trust subgraph of the current VO, renumbered to match
    // `members` order.
    std::vector<bool> keep(trust.size(), false);
    for (const std::size_t g : members) keep[g] = true;
    const graph::Digraph sub = trust.graph().induced_subgraph(keep);
    switch (rule_) {
      case CentralityRule::Degree:
        centrality = graph::degree_centrality(sub);
        break;
      case CentralityRule::Closeness:
        centrality = graph::closeness_centrality(sub);
        break;
      case CentralityRule::Betweenness:
        centrality = graph::betweenness_centrality(sub);
        break;
      case CentralityRule::Eigenvector:
        break;  // handled above
    }
  }
  detail::require(centrality.size() == members.size(),
                  "CentralityVofMechanism: centrality arity mismatch");
  constexpr double kTieTol = 1e-12;
  double lowest = std::numeric_limits<double>::infinity();
  for (const double s : centrality) lowest = std::min(lowest, s);
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < centrality.size(); ++i) {
    if (centrality[i] <= lowest + kTieTol) ties.push_back(i);
  }
  return ties[ties.size() == 1 ? 0 : rng.index(ties.size())];
}

}  // namespace svo::core
