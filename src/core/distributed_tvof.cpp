#include "core/distributed_tvof.hpp"

#include <cmath>
#include <optional>

#include "obs/trace.hpp"

namespace svo::core {

void ProtocolOptions::validate() const {
  latency.validate();
  detail::require(std::isfinite(gsp_processing_seconds) &&
                      gsp_processing_seconds >= 0.0,
                  "ProtocolOptions: gsp_processing_seconds must be finite "
                  "and >= 0");
  detail::require(std::isfinite(report_timeout_seconds) &&
                      report_timeout_seconds >= 0.0,
                  "ProtocolOptions: report_timeout_seconds must be finite "
                  "and >= 0");
  detail::require(std::isfinite(award_timeout_seconds) &&
                      award_timeout_seconds >= 0.0,
                  "ProtocolOptions: award_timeout_seconds must be finite "
                  "and >= 0");
  detail::require(std::isfinite(backoff_multiplier) &&
                      backoff_multiplier >= 1.0,
                  "ProtocolOptions: backoff_multiplier must be >= 1");
  detail::require(std::isfinite(quorum_fraction) && quorum_fraction > 0.0 &&
                      quorum_fraction <= 1.0,
                  "ProtocolOptions: quorum_fraction must be in (0, 1]");
  faults.validate();
  detail::require(!faults.enabled() || (report_timeout_seconds > 0.0 &&
                                        award_timeout_seconds > 0.0),
                  "ProtocolOptions: faults require nonzero phase timeouts "
                  "(a lossy network would hang the trusted party)");
}

std::vector<des::CrashWindow> gsp_crash_schedule(
    std::vector<des::CrashWindow> gsp_windows) {
  for (des::CrashWindow& w : gsp_windows) ++w.node;
  return gsp_windows;
}

namespace {

constexpr std::size_t kTrustedParty = 0;

std::size_t gsp_node(std::size_t g) { return g + 1; }

/// Fault-tolerant trusted-party state machine. Phases:
///
///   Collecting -> Deciding -> Awarding -> Done
///                    ^            |
///                    +-- repair --+   (member failed to acknowledge)
///
/// Every timer captures the epoch at arming time; any phase transition
/// bumps the epoch, so stale timers fire as no-ops. Timers never draw
/// randomness, which keeps the fault-free run bit-identical to the
/// lossless protocol.
class TrustedParty {
 public:
  TrustedParty(const VoFormationMechanism& mechanism,
               const ip::AssignmentInstance& inst,
               const trust::TrustGraph& trust, util::Xoshiro256& rng,
               const ProtocolOptions& opt, des::Simulator& sim,
               des::Network& net, obs::MetricRegistry& reg,
               DistributedRunResult& result)
      : mechanism_(mechanism),
        inst_(inst),
        trust_(trust),
        rng_(rng),
        opt_(opt),
        sim_(sim),
        net_(net),
        result_(result),
        retries_(reg.counter("protocol.retries")),
        timeouts_(reg.counter("protocol.timeouts_fired")),
        repairs_(reg.counter("protocol.repair_rounds")),
        report_phase_s_(reg.gauge("protocol.report_phase_seconds")),
        completion_s_(reg.gauge("protocol.completion_seconds")),
        m_(inst.num_gsps()),
        reported_(m_, 0),
        acked_(m_, 0) {
    const double q = opt_.quorum_fraction * static_cast<double>(m_);
    quorum_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(q)));
  }

  void start() {
    set_phase(Phase::Collecting, "protocol.phase.collecting");
    for (std::size_t g = 0; g < m_; ++g) send_cfp(g);
    arm_report_timer();
  }

  void on_message(const des::Message& msg) {
    note_event();
    if (msg.type == "REPORT") {
      on_report(msg.from - 1);
    } else if (msg.type == "ACK") {
      on_ack(msg.from - 1);
    }
  }

  /// Record that simulated time advanced through a protocol event (used
  /// for the completion fallback when no award round finishes).
  void note_event() { last_event_ = sim_.now(); }
  [[nodiscard]] double last_event() const noexcept { return last_event_; }

  /// True once the protocol reached a terminal outcome (a mechanism
  /// decision, or an explicit formation failure).
  [[nodiscard]] bool decided() const noexcept {
    return mechanism_ran_ || result_.protocol.formation_failed;
  }

 private:
  enum class Phase { Collecting, Deciding, Awarding, Done };

  /// Phase transition. Functionally this is just `phase_ = p`; when the
  /// recorder is enabled it additionally closes the previous phase as a
  /// trace span (real elapsed time — the DES runs synchronously, so
  /// Deciding's real duration is dominated by the mechanism run) with
  /// the simulated clock and repair round attached as annotations.
  /// `name == nullptr` marks a terminal phase that opens no new span.
  ///
  /// Phase events carry causal ids: every message the TP sends is
  /// stamped with the current phase id (Message::trace_parent), and the
  /// phases themselves parent on the enclosing core.protocol.run span —
  /// so the exported DAG reads run -> phase -> message -> deliver ->
  /// reply, per round. Phases cannot use the thread context stack (a
  /// transition fires *inside* the deliver span of the message that
  /// triggered it), hence the manual id bookkeeping.
  void set_phase(Phase p, const char* name) {
    obs::Recorder& rec = obs::Recorder::instance();
    if (rec.enabled()) {
      const std::uint64_t now = obs::now_micros();
      if (root_ctx_ == 0) root_ctx_ = obs::current_span_id();
      if (phase_name_ != nullptr) {
        obs::TraceEvent ev;
        ev.name = phase_name_;
        ev.category = "protocol";
        ev.id = phase_id_;
        ev.parent = root_ctx_;
        ev.start_us = phase_started_us_;
        ev.duration_us = now - phase_started_us_;
        ev.args.emplace_back("sim_now_s", sim_.now());
        // The round the phase *opened* in (begin_repair bumps the
        // counter before transitioning, so close-time would mislabel
        // the final phase of each round).
        ev.args.emplace_back("round", static_cast<double>(phase_round_));
        rec.record(std::move(ev));
      }
      phase_started_us_ = now;
      phase_id_ = name != nullptr ? rec.next_id() : 0;
      phase_round_ = repair_rounds_used_;
    }
    phase_ = p;
    phase_name_ = name;
  }

  /// Trace context for messages this phase originates (0 = untraced).
  [[nodiscard]] std::uint64_t phase_ctx() const noexcept {
    return phase_id_;
  }

  // --- wire helpers -----------------------------------------------------

  // TP-originated messages parent on the current phase event: most are
  // sent from timer / post-solve callbacks where no span is open, so
  // the network's current-span fallback would leave them causally
  // rootless (re-sends after a timeout in particular must still attach
  // to their phase for per-round critical paths).
  void send_cfp(std::size_t g) {
    des::Message cfp;
    cfp.from = kTrustedParty;
    cfp.to = gsp_node(g);
    cfp.type = "CFP";
    cfp.bytes = opt_.envelope_bytes + 32;  // program metadata
    cfp.trace_parent = phase_ctx();
    net_.send(std::move(cfp));
  }

  void send_award(std::size_t g) {
    des::Message award;
    award.from = kTrustedParty;
    award.to = gsp_node(g);
    award.type = "AWARD";
    award.bytes = 8 * tasks_per_member_[g] + opt_.envelope_bytes;
    award.trace_parent = phase_ctx();
    net_.send(std::move(award));
  }

  void send_release(std::size_t g) {
    des::Message release;
    release.from = kTrustedParty;
    release.to = gsp_node(g);
    release.type = "RELEASE";
    release.bytes = opt_.envelope_bytes;
    release.trace_parent = phase_ctx();
    net_.send(std::move(release));
  }

  // --- phase 2: report collection ---------------------------------------

  void on_report(std::size_t g) {
    if (phase_ != Phase::Collecting || g >= m_) return;  // late/duplicate
    if (reported_[g] != 0) return;                       // duplicate report
    reported_[g] = 1;
    if (++reports_ == m_) decide();
  }

  void arm_report_timer() {
    if (opt_.report_timeout_seconds <= 0.0) return;  // hardening disabled
    const double delay =
        opt_.report_timeout_seconds *
        std::pow(opt_.backoff_multiplier,
                 static_cast<double>(report_attempt_));
    const std::size_t expect = epoch_;
    sim_.schedule(delay, [this, expect] {
      if (epoch_ != expect || phase_ != Phase::Collecting) return;  // stale
      timeouts_.add();
      note_event();
      if (reports_ >= quorum_) {
        decide();
        return;
      }
      if (report_attempt_ < opt_.max_retries) {
        ++report_attempt_;
        for (std::size_t g = 0; g < m_; ++g) {
          if (reported_[g] != 0) continue;
          send_cfp(g);
          retries_.add();
        }
        arm_report_timer();
        return;
      }
      give_up();  // quorum never reached
    });
  }

  // --- phase 3: decision (and repair re-decisions) -----------------------

  void decide() {
    ++epoch_;
    set_phase(Phase::Deciding, "protocol.phase.deciding");
    report_phase_s_.set(sim_.now());
    result_.protocol.degraded_quorum = reports_ < m_;
    game::Coalition responsive;
    for (std::size_t g = 0; g < m_; ++g) {
      if (reported_[g] != 0) responsive = responsive.with(g);
    }
    candidates_ = responsive;
    run_formation();
  }

  /// Run the mechanism over the current candidate pool; its measured
  /// compute time advances the simulated clock before notices go out.
  void run_formation() {
    const MechanismResult mr = mechanism_.run(FormationRequest{inst_, trust_, rng_, candidates_});
    mechanism_ran_ = true;
    result_.mechanism = mr;
    const std::size_t expect = epoch_;
    sim_.schedule(mr.elapsed_seconds, [this, expect] {
      if (epoch_ != expect || phase_ != Phase::Deciding) return;  // stale
      note_event();
      dispatch_notices();
    });
  }

  // --- phase 4: notices, awards, acknowledgments -------------------------

  void dispatch_notices() {
    const MechanismResult& r = result_.mechanism;
    if (repair_rounds_used_ == 0) {
      // Release every GSP that was removed along the way.
      for (const auto& it : r.journal) {
        if (it.removed_gsp == SIZE_MAX) continue;
        if (r.selected.contains(it.removed_gsp)) continue;
        send_release(it.removed_gsp);
      }
    } else {
      // Repair round: release previous members no longer selected
      // (crashed ones simply lose the message).
      for (const std::size_t g : prev_members_) {
        if (!r.selected.contains(g)) send_release(g);
      }
    }
    if (!r.success) {
      // Formation infeasible over the current pool: explicit failure.
      result_.protocol.formation_failed = true;
      ++epoch_;
      set_phase(Phase::Done, nullptr);
      return;
    }
    ++epoch_;
    set_phase(Phase::Awarding, "protocol.phase.awarding");
    members_ = r.selected.members();
    acked_.assign(m_, 0);
    acks_ = 0;
    award_attempt_ = 0;
    tasks_per_member_.assign(m_, 0);
    for (const std::size_t g : r.mapping) ++tasks_per_member_[g];
    for (const std::size_t g : members_) send_award(g);
    arm_award_timer();
  }

  void on_ack(std::size_t g) {
    if (phase_ != Phase::Awarding || g >= m_) return;      // stale round
    if (!result_.mechanism.selected.contains(g)) return;   // stale member
    if (acked_[g] != 0) return;                            // duplicate ack
    acked_[g] = 1;
    if (++acks_ == members_.size()) {
      completion_s_.set(sim_.now());
      ++epoch_;
      set_phase(Phase::Done, nullptr);
    }
  }

  void arm_award_timer() {
    if (opt_.award_timeout_seconds <= 0.0) return;  // hardening disabled
    const double delay =
        opt_.award_timeout_seconds *
        std::pow(opt_.backoff_multiplier, static_cast<double>(award_attempt_));
    const std::size_t expect = epoch_;
    sim_.schedule(delay, [this, expect] {
      if (epoch_ != expect || phase_ != Phase::Awarding) return;  // stale
      timeouts_.add();
      note_event();
      if (award_attempt_ < opt_.max_retries) {
        ++award_attempt_;
        for (const std::size_t g : members_) {
          if (acked_[g] != 0) continue;
          send_award(g);
          retries_.add();
        }
        arm_award_timer();
        return;
      }
      // Retries exhausted: the silent members are declared failed and
      // the VO is repaired over the survivors.
      for (const std::size_t g : members_) {
        if (acked_[g] == 0) failed_ = failed_.with(g);
      }
      begin_repair();
    });
  }

  // --- VO repair ---------------------------------------------------------

  void begin_repair() {
    prev_members_ = members_;
    for (const std::size_t g : failed_.members()) {
      candidates_ = candidates_.without(g);
    }
    if (repair_rounds_used_ >= opt_.max_repair_rounds || candidates_.empty()) {
      give_up();
      return;
    }
    ++repair_rounds_used_;
    repairs_.add();
    ++epoch_;
    set_phase(Phase::Deciding, "protocol.phase.deciding");
    run_formation();
  }

  /// Terminal failure: quorum unreachable, no survivors, or repair
  /// budget exhausted. Reported explicitly — never a hang.
  void give_up() {
    result_.protocol.formation_failed = true;
    result_.mechanism.success = false;  // no working VO was handed over
    // Best-effort release of anyone still holding an award.
    for (const std::size_t g : members_) send_release(g);
    completion_s_.set(sim_.now());
    ++epoch_;
    set_phase(Phase::Done, nullptr);
  }

  const VoFormationMechanism& mechanism_;
  const ip::AssignmentInstance& inst_;
  const trust::TrustGraph& trust_;
  util::Xoshiro256& rng_;
  const ProtocolOptions& opt_;
  des::Simulator& sim_;
  des::Network& net_;
  DistributedRunResult& result_;

  // Fault/latency accounting lives in the run's MetricRegistry (the
  // observability spine); run_distributed copies the final values into
  // ProtocolMetrics. Cached references — registry entries are stable.
  obs::Counter& retries_;
  obs::Counter& timeouts_;
  obs::Counter& repairs_;
  obs::Gauge& report_phase_s_;
  obs::Gauge& completion_s_;

  const std::size_t m_;
  std::size_t quorum_ = 1;
  Phase phase_ = Phase::Collecting;
  const char* phase_name_ = nullptr;
  std::uint64_t phase_started_us_ = 0;
  std::uint64_t phase_id_ = 0;
  std::uint64_t root_ctx_ = 0;
  std::size_t phase_round_ = 0;
  std::size_t epoch_ = 0;
  bool mechanism_ran_ = false;
  double last_event_ = 0.0;

  // Report phase.
  std::vector<char> reported_;
  std::size_t reports_ = 0;
  std::size_t report_attempt_ = 0;

  // Decision / repair.
  game::Coalition candidates_;
  game::Coalition failed_;
  std::size_t repair_rounds_used_ = 0;

  // Award phase.
  std::vector<std::size_t> members_;
  std::vector<std::size_t> prev_members_;
  std::vector<std::size_t> tasks_per_member_;
  std::vector<char> acked_;
  std::size_t acks_ = 0;
  std::size_t award_attempt_ = 0;
};

}  // namespace

DistributedRunResult run_distributed(const VoFormationMechanism& mechanism,
                                     const ip::AssignmentInstance& inst,
                                     const trust::TrustGraph& trust,
                                     util::Xoshiro256& rng,
                                     const ProtocolOptions& options) {
  options.validate();
  obs::Span span("core.protocol.run", "core");
  const std::size_t m = inst.num_gsps();
  const std::size_t n = inst.num_tasks();

  des::Simulator sim;
  des::Network net(sim, m + 1, options.latency, options.network_seed);
  std::optional<des::FaultInjector> injector;
  if (options.faults.enabled()) {
    injector.emplace(options.faults);
    net.set_fault_injector(&*injector);
  }

  // The protocol's fault/latency counters live in a per-run registry so
  // they flow through the same obs primitives as every other subsystem;
  // a local registry (not the global recorder's) keeps concurrent
  // sweeps from mixing their per-run numbers. Always on — ProtocolMetrics
  // is part of the functional result, not optional telemetry.
  obs::MetricRegistry preg;
  DistributedRunResult result;
  TrustedParty tp(mechanism, inst, trust, rng, options, sim, net, preg,
                  result);

  // GSP behaviour: answer CFPs with a report after local processing;
  // acknowledge awards; ignore releases. Duplicates (protocol re-sends)
  // are answered again — the TP deduplicates.
  for (std::size_t g = 0; g < m; ++g) {
    net.set_handler(gsp_node(g), [&, g](const des::Message& msg) {
      tp.note_event();
      if (msg.type == "CFP") {
        // The report is sent from a *scheduled* callback, after the
        // CFP's deliver span has closed — capture that span id now so
        // the CFP -> REPORT causal edge survives the async boundary.
        const std::uint64_t ctx = obs::current_span_id();
        sim.schedule(options.gsp_processing_seconds, [&, g, ctx] {
          des::Message report;
          report.from = gsp_node(g);
          report.to = kTrustedParty;
          report.type = "REPORT";
          // Trust row (8m) + cost and time columns (16n) + envelope.
          report.bytes = 8 * m + 16 * n + options.envelope_bytes;
          report.trace_parent = ctx;
          net.send(std::move(report));
        });
      } else if (msg.type == "AWARD") {
        des::Message ack;
        ack.from = gsp_node(g);
        ack.to = kTrustedParty;
        ack.type = "ACK";
        ack.bytes = options.envelope_bytes;
        net.send(std::move(ack));
      }
      // RELEASE needs no reply.
    });
  }
  net.set_handler(kTrustedParty,
                  [&](const des::Message& msg) { tp.on_message(msg); });

  tp.start();
  (void)sim.run();

  detail::require(tp.decided(),
                  "run_distributed: protocol never reached the decision");

  // Fold the per-run registry back into the plain ProtocolMetrics struct
  // callers consume.
  result.protocol.retries =
      static_cast<std::size_t>(preg.counter_value("protocol.retries"));
  result.protocol.timeouts_fired =
      static_cast<std::size_t>(preg.counter_value("protocol.timeouts_fired"));
  result.protocol.repair_rounds =
      static_cast<std::size_t>(preg.counter_value("protocol.repair_rounds"));
  result.protocol.report_phase_seconds =
      preg.gauge_value("protocol.report_phase_seconds");
  result.protocol.completion_seconds =
      preg.gauge_value("protocol.completion_seconds");
  if (result.protocol.completion_seconds == 0.0) {
    // No award round finished (mechanism failed): completion = the last
    // protocol event (the final release delivery / decision dispatch).
    result.protocol.completion_seconds = tp.last_event();
  }
  result.protocol.messages = net.messages_sent();
  result.protocol.bytes = net.bytes_sent();
  if (injector.has_value()) {
    result.protocol.drops_observed = injector->stats().total_drops();
  }

  if (span.active()) {
    span.arg("gsps", static_cast<double>(m));
    span.arg("tasks", static_cast<double>(n));
    span.arg("messages", static_cast<double>(result.protocol.messages));
    span.arg("bytes", static_cast<double>(result.protocol.bytes));
    span.arg("retries", static_cast<double>(result.protocol.retries));
    span.arg("sim_completion_s", result.protocol.completion_seconds);
    span.arg("outcome",
             result.protocol.formation_failed ? "failed" : "formed");
    obs::MetricRegistry& g = obs::Recorder::instance().metrics();
    g.counter("core.protocol.runs").add();
    g.counter("core.protocol.messages").add(result.protocol.messages);
    g.counter("core.protocol.bytes").add(result.protocol.bytes);
    g.counter("core.protocol.retries").add(result.protocol.retries);
    g.counter("core.protocol.timeouts_fired")
        .add(result.protocol.timeouts_fired);
    g.counter("core.protocol.repair_rounds")
        .add(result.protocol.repair_rounds);
    g.counter("core.protocol.drops_observed")
        .add(result.protocol.drops_observed);
    if (result.protocol.formation_failed) {
      g.counter("core.protocol.formation_failures").add();
    }
    g.histogram("core.protocol.sim_completion_seconds")
        .observe(result.protocol.completion_seconds);
  }
  return result;
}

}  // namespace svo::core
