#include "core/distributed_tvof.hpp"

namespace svo::core {

DistributedRunResult run_distributed(const VoFormationMechanism& mechanism,
                                     const ip::AssignmentInstance& inst,
                                     const trust::TrustGraph& trust,
                                     util::Xoshiro256& rng,
                                     const ProtocolOptions& options) {
  detail::require(options.gsp_processing_seconds >= 0.0,
                  "run_distributed: negative processing delay");
  const std::size_t m = inst.num_gsps();
  const std::size_t n = inst.num_tasks();

  des::Simulator sim;
  des::Network net(sim, m + 1, options.latency, options.network_seed);
  constexpr std::size_t kTrustedParty = 0;
  const auto gsp_node = [](std::size_t g) { return g + 1; };

  DistributedRunResult result;
  std::size_t reports = 0;
  std::size_t acks = 0;
  std::size_t awards_expected = 0;
  bool mechanism_ran = false;

  // GSP behaviour: answer CFPs with a report after local processing;
  // acknowledge awards; ignore releases.
  for (std::size_t g = 0; g < m; ++g) {
    net.set_handler(gsp_node(g), [&, g](const des::Message& msg) {
      if (msg.type == "CFP") {
        sim.schedule(options.gsp_processing_seconds, [&, g] {
          des::Message report;
          report.from = gsp_node(g);
          report.to = kTrustedParty;
          report.type = "REPORT";
          // Trust row (8m) + cost and time columns (16n) + envelope.
          report.bytes = 8 * m + 16 * n + options.envelope_bytes;
          net.send(std::move(report));
        });
      } else if (msg.type == "AWARD") {
        des::Message ack;
        ack.from = gsp_node(g);
        ack.to = kTrustedParty;
        ack.type = "ACK";
        ack.bytes = options.envelope_bytes;
        net.send(std::move(ack));
      }
      // RELEASE needs no reply.
    });
  }

  // Trusted-party behaviour.
  net.set_handler(kTrustedParty, [&](const des::Message& msg) {
    if (msg.type == "REPORT") {
      if (++reports < m) return;
      result.protocol.report_phase_seconds = sim.now();
      // All data in: run the actual mechanism; its measured compute time
      // advances the simulated clock before the notices go out.
      const MechanismResult mr = mechanism.run(inst, trust, rng);
      mechanism_ran = true;
      const double compute = mr.elapsed_seconds;
      result.mechanism = mr;
      sim.schedule(compute, [&] {
        const MechanismResult& r = result.mechanism;
        // Release every GSP that was removed along the way.
        for (const auto& it : r.journal) {
          if (it.removed_gsp == SIZE_MAX) continue;
          if (r.selected.contains(it.removed_gsp)) continue;
          des::Message release;
          release.from = kTrustedParty;
          release.to = gsp_node(it.removed_gsp);
          release.type = "RELEASE";
          release.bytes = options.envelope_bytes;
          net.send(std::move(release));
        }
        if (!r.success) return;  // no awards: protocol ends with releases
        // Award each member its task list.
        std::vector<std::size_t> tasks_per_member(m, 0);
        for (const std::size_t g : r.mapping) ++tasks_per_member[g];
        for (const std::size_t g : r.selected.members()) {
          des::Message award;
          award.from = kTrustedParty;
          award.to = gsp_node(g);
          award.type = "AWARD";
          award.bytes = 8 * tasks_per_member[g] + options.envelope_bytes;
          net.send(std::move(award));
          ++awards_expected;
        }
      });
    } else if (msg.type == "ACK") {
      if (++acks == awards_expected) {
        result.protocol.completion_seconds = sim.now();
      }
    }
  });

  // Kick off: CFP broadcast.
  for (std::size_t g = 0; g < m; ++g) {
    des::Message cfp;
    cfp.from = kTrustedParty;
    cfp.to = gsp_node(g);
    cfp.type = "CFP";
    cfp.bytes = options.envelope_bytes + 32;  // program metadata
    net.send(std::move(cfp));
  }
  (void)sim.run();

  detail::require(mechanism_ran,
                  "run_distributed: protocol never reached the decision");
  if (result.protocol.completion_seconds == 0.0) {
    // No awards were sent (mechanism failed): completion = last event.
    result.protocol.completion_seconds = sim.now();
  }
  result.protocol.messages = net.messages_sent();
  result.protocol.bytes = net.bytes_sent();
  return result;
}

}  // namespace svo::core
