/// \file rvof.hpp
/// RVOF — the paper's baseline (Section IV-B): the same formation loop as
/// TVOF but with reputation-blind, uniformly random removal.
#pragma once

#include "core/mechanism.hpp"

namespace svo::core {

/// Random VO Formation. Identical solver, identical selection rule —
/// isolating exactly the contribution of reputation-guided removal, as
/// the paper's experimental design intends.
class RvofMechanism final : public VoFormationMechanism {
 public:
  explicit RvofMechanism(const ip::AssignmentSolver& solver,
                         MechanismConfig config = {});
  [[nodiscard]] std::string name() const override { return "RVOF"; }

 protected:
  [[nodiscard]] std::size_t choose_removal(
      const trust::TrustGraph& trust, const std::vector<std::size_t>& members,
      const std::vector<double>& scores, util::Xoshiro256& rng) const override;
};

}  // namespace svo::core
