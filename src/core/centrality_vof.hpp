/// \file centrality_vof.hpp
/// Ablation mechanism: the TVOF loop with the eigenvector-reputation
/// removal rule swapped for another graph-centrality measure. The paper
/// motivates eigenvector centrality over the alternatives it cites
/// ([5]-[8]); this mechanism lets bench_ablation_centrality quantify
/// that choice on identical scenarios.
#pragma once

#include "core/mechanism.hpp"

namespace svo::core {

/// Which centrality drives the removal decision.
enum class CentralityRule {
  Eigenvector,  ///< paper's rule (equivalent to TvofMechanism)
  Degree,       ///< weighted in-degree of the VO's trust subgraph
  Closeness,    ///< harmonic closeness over incoming trust paths
  Betweenness,  ///< Brandes betweenness on 1/weight distances
};

/// Human-readable rule name.
[[nodiscard]] const char* to_string(CentralityRule rule) noexcept;

/// TVOF-style mechanism that removes the member with the lowest
/// centrality (recomputed on the shrinking VO's trust subgraph each
/// iteration), ties broken uniformly at random.
class CentralityVofMechanism final : public VoFormationMechanism {
 public:
  CentralityVofMechanism(const ip::AssignmentSolver& solver,
                         CentralityRule rule, MechanismConfig config = {});
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] CentralityRule rule() const noexcept { return rule_; }

 protected:
  [[nodiscard]] std::size_t choose_removal(
      const trust::TrustGraph& trust, const std::vector<std::size_t>& members,
      const std::vector<double>& scores, util::Xoshiro256& rng) const override;

 private:
  CentralityRule rule_;
};

}  // namespace svo::core
