#include "core/mechanism.hpp"

#include <algorithm>
#include <limits>

#include "game/payoff.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace svo::core {

VoFormationMechanism::VoFormationMechanism(const ip::AssignmentSolver& solver,
                                           MechanismConfig config)
    : solver_(solver), config_(config) {}

double estimate_reliability(const trust::TrustGraph& trust, std::size_t gsp,
                            double prior) {
  detail::require(gsp < trust.size(),
                  "estimate_reliability: GSP out of range");
  detail::require(prior >= 0.0 && prior <= 1.0,
                  "estimate_reliability: prior must be in [0,1]");
  double sum = 0.0;
  std::size_t observers = 0;
  for (std::size_t i = 0; i < trust.size(); ++i) {
    if (i == gsp) continue;
    const double u = trust.trust(i, gsp);
    if (u > 0.0) {
      sum += std::min(u, 1.0);
      ++observers;
    }
  }
  return observers == 0 ? prior : sum / static_cast<double>(observers);
}

MechanismResult VoFormationMechanism::run(const FormationRequest& request) const {
  const ip::AssignmentInstance& inst = request.instance;
  const trust::TrustGraph& trust = request.trust;
  util::Xoshiro256& rng = request.rng;
  const game::Coalition candidates =
      request.candidates.empty() ? game::Coalition::all(inst.num_gsps())
                                 : request.candidates;
  inst.validate();
  detail::require(trust.size() == inst.num_gsps(),
                  "VoFormationMechanism::run: trust graph size != num GSPs");
  const std::size_t m = inst.num_gsps();
  detail::require(!candidates.empty(),
                  "VoFormationMechanism::run: empty candidate pool");
  detail::require(candidates.is_subset_of(game::Coalition::all(m)),
                  "VoFormationMechanism::run: candidates exceed the GSP set");
  const util::WallTimer timer;
  obs::Span span("core.mechanism.run", "core");

  MechanismResult result;
  const trust::ReputationEngine engine(config_.reputation);

  // Global reputation over all GSPs: the metric basis for eq. (7) and the
  // selection rule of eq. (17).
  result.global_reputation = engine.compute(trust).scores;
  const auto avg_global = [&](game::Coalition c) {
    if (c.empty()) return 0.0;
    double acc = 0.0;
    for (const std::size_t i : c.members()) acc += result.global_reputation[i];
    return acc / static_cast<double>(c.size());
  };

  const game::VoValueFunction v(inst, solver_);

  // Algorithm 1 main loop, started from the candidate pool (the grand
  // coalition in the paper's setting). Under the Incremental policy
  // each iteration hands the next one its evaluation plus the removed
  // GSP, so line 5 can repair instead of solving from scratch;
  // references into the value-function cache are stable.
  game::Coalition c = candidates;
  std::vector<game::Coalition> feasible_list;  // L
  bool infeasible_hit = false;
  const bool warm = request.warm_start == WarmStartPolicy::Incremental;
  const game::CoalitionEvaluation* prev_eval = nullptr;
  std::size_t prev_removed = SIZE_MAX;
  while (!c.empty()) {
    obs::Span iter_span("core.mechanism.iteration", "core");
    if (iter_span.active()) {
      iter_span.arg("coalition_size", static_cast<double>(c.size()));
    }
    const game::CoalitionEvaluation& eval =  // line 5
        warm && prev_eval != nullptr
            ? v.evaluate(c, game::WarmHint{prev_eval, prev_removed})
            : v.evaluate(c);
    if (iter_span.active()) {
      iter_span.arg("feasible", eval.feasible ? 1.0 : 0.0);
    }

    IterationRecord rec;
    rec.coalition = c;
    rec.feasible = eval.feasible;
    rec.stats = eval.stats;
    result.stats.accumulate(eval.stats);
    rec.avg_global_reputation = avg_global(c);
    if (eval.feasible) {
      rec.cost = eval.cost;
      rec.value = eval.value;
      rec.payoff_share = game::equal_share(eval.value, c.size());
      feasible_list.push_back(c);  // line 7
    }

    if (!eval.feasible) {  // flag stays TRUE -> loop terminates (line 13)
      result.journal.push_back(rec);
      infeasible_hit = true;
      break;
    }

    // Line 10: recompute reputation on the current VO's subgraph.
    const std::vector<std::size_t> members = c.members();
    const trust::ReputationResult rep = engine.compute(trust, members);
    rec.avg_local_reputation = rep.average;

    if (c.size() == 1) {
      // Removing the last member would leave the empty coalition, whose
      // mapping is trivially infeasible — the loop ends here.
      result.journal.push_back(rec);
      break;
    }

    // Lines 11-12: remove one GSP (rule differs per mechanism).
    const std::size_t pick = choose_removal(trust, members, rep.scores, rng);
    detail::require(pick < members.size(),
                    "choose_removal returned an out-of-range index");
    rec.removed_gsp = members[pick];
    result.journal.push_back(rec);
    prev_eval = &eval;
    prev_removed = members[pick];
    c = c.without(members[pick]);
  }
  (void)infeasible_hit;

  // Lines 14-15: pick the best feasible VO from L.
  double best_key = -std::numeric_limits<double>::infinity();
  game::Coalition best;
  for (const game::Coalition cand : feasible_list) {
    const game::CoalitionEvaluation& eval = v.evaluate(cand);
    const double share = game::equal_share(eval.value, cand.size());
    double key = share;
    switch (config_.selection) {
      case SelectionRule::MaxIndividualPayoff:
        break;
      case SelectionRule::MaxPayoffReputationProduct:
        key = share * avg_global(cand);
        break;
      case SelectionRule::MaxExpectedIndividualPayoff: {
        // Expected value under all-or-nothing payment: the program pays
        // only if every member delivers.
        double p = 1.0;
        for (const std::size_t g : cand.members()) {
          p *= estimate_reliability(trust, g);
        }
        key = game::equal_share(p * inst.payment - eval.cost, cand.size());
        break;
      }
    }
    if (key > best_key) {
      best_key = key;
      best = cand;
    }
  }
  if (!best.empty()) {
    const game::CoalitionEvaluation& eval = v.evaluate(best);
    result.success = true;
    result.selected = best;
    result.mapping = eval.mapping;
    result.cost = eval.cost;
    result.value = eval.value;
    result.payoff_share = game::equal_share(eval.value, best.size());
    result.avg_global_reputation = avg_global(best);
  }
  result.elapsed_seconds = timer.seconds();
  if (span.active()) {
    span.arg("gsps", static_cast<double>(m));
    span.arg("iterations", static_cast<double>(result.journal.size()));
    span.arg("feasible_vos", static_cast<double>(feasible_list.size()));
    span.arg("success", result.success ? 1.0 : 0.0);
    span.arg("vo_size", static_cast<double>(result.selected.size()));
    span.arg("cost", result.cost);
    span.arg("warm", warm ? 1.0 : 0.0);
    obs::MetricRegistry& mreg = obs::Recorder::instance().metrics();
    mreg.counter("core.mechanism.runs").add();
    mreg.counter("core.mechanism.iterations").add(result.journal.size());
    if (!result.success) mreg.counter("core.mechanism.failures").add();
    mreg.histogram("core.mechanism.iters_per_run")
        .observe(static_cast<double>(result.journal.size()));
  }
  return result;
}

}  // namespace svo::core
