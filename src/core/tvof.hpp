/// \file tvof.hpp
/// TVOF — the paper's Trust-based VO Formation mechanism (Algorithm 1).
#pragma once

#include "core/mechanism.hpp"

namespace svo::core {

/// Removes, each iteration, the GSP with the lowest reputation as
/// recomputed on the current VO's induced trust subgraph; ties are broken
/// uniformly at random (Algorithm 1, line 11). Theorems 1 and 2 of the
/// paper (individual stability, Pareto optimality within L) apply to the
/// VO this mechanism returns; both are re-verified empirically by the
/// test suite.
class TvofMechanism final : public VoFormationMechanism {
 public:
  explicit TvofMechanism(const ip::AssignmentSolver& solver,
                         MechanismConfig config = {});
  [[nodiscard]] std::string name() const override { return "TVOF"; }

 protected:
  [[nodiscard]] std::size_t choose_removal(
      const trust::TrustGraph& trust, const std::vector<std::size_t>& members,
      const std::vector<double>& scores, util::Xoshiro256& rng) const override;
};

}  // namespace svo::core
