#include "core/tvof.hpp"

#include <algorithm>
#include <limits>

namespace svo::core {

TvofMechanism::TvofMechanism(const ip::AssignmentSolver& solver,
                             MechanismConfig config)
    : VoFormationMechanism(solver, config) {}

std::size_t TvofMechanism::choose_removal(
    const trust::TrustGraph& /*trust*/,
    const std::vector<std::size_t>& members, const std::vector<double>& scores,
    util::Xoshiro256& rng) const {
  detail::require(members.size() == scores.size(),
                  "TvofMechanism: scores arity mismatch");
  // Lowest reputation; ties (within an absolute tolerance) are broken
  // uniformly at random, as Algorithm 1 specifies.
  constexpr double kTieTol = 1e-12;
  double lowest = std::numeric_limits<double>::infinity();
  for (const double s : scores) lowest = std::min(lowest, s);
  std::vector<std::size_t> ties;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i] <= lowest + kTieTol) ties.push_back(i);
  }
  return ties[ties.size() == 1 ? 0 : rng.index(ties.size())];
}

}  // namespace svo::core
