/// \file merge_split.hpp
/// Merge-and-split VO formation — the authors' earlier mechanism
/// (Mashayekhy & Grosu, IPCCC 2011, cited as [25]) rebuilt here as an
/// additional comparison point for TVOF, following the generic
/// merge/split framework of Apt & Witzel the paper cites as [22].
///
/// Starting from singleton coalitions, two rules are applied to
/// quiescence:
///   merge: coalitions A and B merge when every member of both weakly
///          prefers A u B (and someone strictly does);
///   split: coalition C splits into {S, C \ S} when every member of both
///          parts weakly prefers its part (and someone strictly does).
/// Preference compares (equal-share payoff, average global reputation)
/// with Pareto semantics — set `consider_reputation = false` for the
/// payoff-only ordering of the 2011 paper.
///
/// The resulting structure is D_hp-stable (no applicable merge or
/// split). As in TVOF, exactly one coalition then executes the program:
/// the feasible one with the highest individual payoff.
#pragma once

#include "core/mechanism.hpp"

namespace svo::core {

/// Options for the merge-and-split process.
struct MergeSplitConfig {
  /// Include average global reputation in the Pareto preference.
  bool consider_reputation = true;
  /// Split enumeration is Θ(2^(|C|-1)); coalitions whose enumeration
  /// would exceed this many subsets only test single-member splits.
  std::size_t max_split_enumeration = 4096;
  /// Safety cap on merge/split alternation rounds.
  std::size_t max_rounds = 64;
  trust::ReputationOptions reputation;
};

/// Outcome of a merge-and-split run.
struct MergeSplitResult {
  /// Final coalition structure (disjoint cover of all GSPs).
  std::vector<game::Coalition> structure;
  /// Executing coalition (empty when no coalition is feasible).
  game::Coalition selected;
  bool success = false;
  ip::Assignment mapping;
  double cost = 0.0;
  double value = 0.0;
  double payoff_share = 0.0;
  double avg_global_reputation = 0.0;
  /// Global reputation scores over all GSPs.
  std::vector<double> global_reputation;
  std::size_t merges = 0;
  std::size_t splits = 0;
  std::size_t rounds = 0;
  double elapsed_seconds = 0.0;
};

/// The mechanism object (thread-safe run(), like the others).
class MergeSplitMechanism {
 public:
  /// `solver` must outlive the mechanism.
  explicit MergeSplitMechanism(const ip::AssignmentSolver& solver,
                               MergeSplitConfig config = {});

  [[nodiscard]] MergeSplitResult run(const ip::AssignmentInstance& inst,
                                     const trust::TrustGraph& trust) const;

  [[nodiscard]] std::string name() const { return "MSVOF"; }
  [[nodiscard]] const MergeSplitConfig& config() const noexcept {
    return config_;
  }

 private:
  const ip::AssignmentSolver& solver_;
  MergeSplitConfig config_;
};

}  // namespace svo::core
