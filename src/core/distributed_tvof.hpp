/// \file distributed_tvof.hpp
/// The trusted-party protocol behind Algorithm 1, made explicit. The
/// paper states the mechanism "is executed by a trusted party that also
/// facilitates the communication among VOs/GSPs" but leaves the exchange
/// implicit; this module simulates it on the des/ layer:
///
///   1. the trusted party (TP) broadcasts a call-for-participation;
///   2. each GSP reports its direct-trust row and its cost/time columns
///      (8m + 16n bytes — the data Algorithm 1 needs);
///   3. the TP runs TVOF locally (the *measured* compute time of the
///      actual mechanism run advances the simulated clock);
///   4. removed GSPs receive release notices; final members receive
///      award messages carrying their task lists and acknowledge.
///
/// The result couples the ordinary MechanismResult with protocol
/// metrics: message count, bytes on the wire, and end-to-end latency —
/// the deployment costs a real grid operator would weigh.
#pragma once

#include "core/mechanism.hpp"
#include "des/network.hpp"

namespace svo::core {

/// Protocol tuning knobs.
struct ProtocolOptions {
  des::LatencyModel latency;
  /// Local processing delay before a GSP answers a CFP, seconds.
  double gsp_processing_seconds = 2e-3;
  /// Fixed per-message envelope overhead, bytes.
  std::size_t envelope_bytes = 64;
  /// Seed of the network jitter stream.
  std::uint64_t network_seed = 0xBEEF;
};

/// Wire/latency accounting of one protocol execution.
struct ProtocolMetrics {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  /// Simulated time from CFP broadcast to the last award acknowledgment.
  double completion_seconds = 0.0;
  /// Simulated time spent collecting the m reports (phase 2).
  double report_phase_seconds = 0.0;
};

/// Combined outcome.
struct DistributedRunResult {
  MechanismResult mechanism;
  ProtocolMetrics protocol;
};

/// Execute `mechanism` under the trusted-party protocol. Semantically
/// identical to mechanism.run(inst, trust, rng) — the protocol layer
/// adds measurement, never changes the decision. Deterministic in
/// (inputs, rng, options.network_seed).
[[nodiscard]] DistributedRunResult run_distributed(
    const VoFormationMechanism& mechanism, const ip::AssignmentInstance& inst,
    const trust::TrustGraph& trust, util::Xoshiro256& rng,
    const ProtocolOptions& options = {});

}  // namespace svo::core
