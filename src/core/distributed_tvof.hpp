/// \file distributed_tvof.hpp
/// The trusted-party protocol behind Algorithm 1, made explicit — and
/// fault-tolerant. The paper states the mechanism "is executed by a
/// trusted party that also facilitates the communication among VOs/GSPs"
/// but leaves the exchange implicit; this module simulates it on the
/// des/ layer:
///
///   1. the trusted party (TP) broadcasts a call-for-participation;
///   2. each GSP reports its direct-trust row and its cost/time columns
///      (8m + 16n bytes — the data Algorithm 1 needs);
///   3. the TP runs TVOF locally (the *measured* compute time of the
///      actual mechanism run advances the simulated clock);
///   4. removed GSPs receive release notices; final members receive
///      award messages carrying their task lists and acknowledge.
///
/// Because real grids drop messages and real providers crash, the TP is
/// hardened (see DESIGN.md "Fault model & recovery"):
///
///   * each phase is guarded by a timeout with capped exponential
///     backoff; unanswered CFPs and un-acknowledged awards are re-sent;
///   * once a configurable quorum of reports has arrived the TP proceeds
///     with the responsive subset instead of hanging (degraded mode);
///   * a member that never acknowledges its award is declared failed and
///     the TP *repairs* the VO: formation is re-run over the survivors,
///     reassigning every task, for up to max_repair_rounds rounds.
///
/// With all fault knobs at zero the hardened protocol produces
/// bit-identical results to the lossless protocol: timers that never
/// take effect consume no randomness and the message sequence is
/// unchanged.
///
/// The result couples the ordinary MechanismResult with protocol
/// metrics: message count, bytes on the wire, end-to-end latency, and
/// the fault/recovery counters a real grid operator would monitor.
#pragma once

#include "core/mechanism.hpp"
#include "des/fault.hpp"
#include "des/network.hpp"

namespace svo::core {

/// Protocol tuning knobs.
struct ProtocolOptions {
  des::LatencyModel latency;
  /// Local processing delay before a GSP answers a CFP, seconds.
  double gsp_processing_seconds = 2e-3;
  /// Fixed per-message envelope overhead, bytes.
  std::size_t envelope_bytes = 64;
  /// Seed of the network jitter stream.
  std::uint64_t network_seed = 0xBEEF;

  /// Fault model applied to every message (all-zero: lossless network).
  des::FaultConfig faults;
  /// Report-phase timeout, seconds. When it fires the TP proceeds with
  /// the responsive subset (if quorum is met) or re-sends CFPs to the
  /// silent GSPs. 0 disables phase timers entirely — only valid with
  /// faults disabled, since a lossy network could then hang the TP.
  double report_timeout_seconds = 0.5;
  /// Award-phase timeout, seconds (same contract as above).
  double award_timeout_seconds = 0.25;
  /// Timeout growth per retry: attempt k waits timeout * backoff^k.
  double backoff_multiplier = 2.0;
  /// Re-send attempts per phase before degrading / declaring failure.
  std::size_t max_retries = 4;
  /// Fraction of the m reports required to run formation in degraded
  /// mode once the report timeout fires (at least one report always).
  double quorum_fraction = 0.5;
  /// VO repair rounds after an awarded member fails to acknowledge.
  std::size_t max_repair_rounds = 3;

  /// Throws InvalidArgument on out-of-range fields, and when faults are
  /// enabled while the phase timers are disabled (a hang waiting to
  /// happen).
  void validate() const;
};

/// Wire/latency accounting of one protocol execution.
struct ProtocolMetrics {
  std::size_t messages = 0;
  std::size_t bytes = 0;
  /// Simulated time from CFP broadcast to the last award acknowledgment.
  double completion_seconds = 0.0;
  /// Simulated time spent collecting the reports (phase 2).
  double report_phase_seconds = 0.0;

  // --- Fault/recovery counters (all zero on a clean, lossless run) ---
  /// Messages re-sent after a timeout (CFP and AWARD re-sends).
  std::size_t retries = 0;
  /// Phase timers that fired and took effect (stale timers don't count).
  std::size_t timeouts_fired = 0;
  /// Messages the fault injector destroyed (link drops + crash drops).
  std::size_t drops_observed = 0;
  /// VO repair rounds executed after member failures.
  std::size_t repair_rounds = 0;
  /// True when formation ran on a strict subset of the GSPs (quorum
  /// degradation) instead of all m reports.
  bool degraded_quorum = false;
  /// True when the protocol could not hand over a working VO: quorum
  /// never reached, formation infeasible, or repair rounds exhausted.
  /// Never silent — when set, mechanism.success is false as well.
  bool formation_failed = false;
};

/// Combined outcome.
struct DistributedRunResult {
  MechanismResult mechanism;
  ProtocolMetrics protocol;
};

/// Crash windows in FaultConfig address *network nodes*: the trusted
/// party occupies node 0 and GSP g occupies node g + 1. This helper maps
/// a GSP-indexed schedule (e.g. from des::random_crash_windows over m
/// GSPs) onto protocol node ids.
[[nodiscard]] std::vector<des::CrashWindow> gsp_crash_schedule(
    std::vector<des::CrashWindow> gsp_windows);

/// Execute `mechanism` under the trusted-party protocol. With faults
/// disabled this is semantically identical to mechanism.run(
/// FormationRequest{inst, trust, rng}) — the protocol layer adds
/// measurement, never changes the
/// decision. Under faults the decision is made over the responsive /
/// surviving subset as described above. Deterministic in (inputs, rng,
/// options.network_seed, options.faults.seed).
[[nodiscard]] DistributedRunResult run_distributed(
    const VoFormationMechanism& mechanism, const ip::AssignmentInstance& inst,
    const trust::TrustGraph& trust, util::Xoshiro256& rng,
    const ProtocolOptions& options = {});

}  // namespace svo::core
