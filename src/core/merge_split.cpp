#include "core/merge_split.hpp"

#include <algorithm>
#include <limits>

#include "game/payoff.hpp"
#include "util/timer.hpp"

namespace svo::core {

namespace {

/// Pareto comparison of coalition points for the merge/split rules:
/// `after` is acceptable to a part's members iff it is >= in every
/// considered criterion; a rule fires only if some part is strictly
/// better off.
struct Point {
  double share = 0.0;
  double reputation = 0.0;
};

bool weakly_better(const Point& after, const Point& before,
                   bool consider_reputation) {
  if (after.share < before.share) return false;
  return !consider_reputation || after.reputation >= before.reputation;
}

bool strictly_better(const Point& after, const Point& before,
                     bool consider_reputation) {
  if (!weakly_better(after, before, consider_reputation)) return false;
  return after.share > before.share ||
         (consider_reputation && after.reputation > before.reputation);
}

}  // namespace

MergeSplitMechanism::MergeSplitMechanism(const ip::AssignmentSolver& solver,
                                         MergeSplitConfig config)
    : solver_(solver), config_(config) {}

MergeSplitResult MergeSplitMechanism::run(const ip::AssignmentInstance& inst,
                                          const trust::TrustGraph& trust) const {
  inst.validate();
  detail::require(trust.size() == inst.num_gsps(),
                  "MergeSplitMechanism::run: trust size != num GSPs");
  const std::size_t m = inst.num_gsps();
  const util::WallTimer timer;

  MergeSplitResult result;
  const trust::ReputationEngine engine(config_.reputation);
  result.global_reputation = engine.compute(trust).scores;
  const game::VoValueFunction v(inst, solver_);

  const auto point_of = [&](game::Coalition c) {
    Point p;
    const auto& eval = v.evaluate(c);
    p.share = eval.feasible ? game::equal_share(eval.value, c.size()) : 0.0;
    if (!c.empty()) {
      double rep = 0.0;
      for (const std::size_t g : c.members()) {
        rep += result.global_reputation[g];
      }
      p.reputation = rep / static_cast<double>(c.size());
    }
    return p;
  };

  // Start from singletons.
  std::vector<game::Coalition> cs;
  cs.reserve(m);
  for (std::size_t g = 0; g < m; ++g) cs.push_back(game::Coalition::of({g}));

  const bool use_rep = config_.consider_reputation;
  for (result.rounds = 0; result.rounds < config_.max_rounds;
       ++result.rounds) {
    bool changed = false;

    // Merge passes: try every unordered pair; restart scanning after a
    // merge (indices shift).
    bool merged = true;
    while (merged) {
      merged = false;
      for (std::size_t i = 0; i < cs.size() && !merged; ++i) {
        for (std::size_t j = i + 1; j < cs.size() && !merged; ++j) {
          const game::Coalition u = cs[i].unite(cs[j]);
          const Point pu = point_of(u);
          const Point pi = point_of(cs[i]);
          const Point pj = point_of(cs[j]);
          // "Nothing to lose": two zero-share (infeasible) coalitions may
          // always pool resources — without this the process cannot leave
          // the all-infeasible singleton start, since no strict payoff
          // improvement exists below the feasibility threshold. Such
          // merges can never be undone by a split (splits require strict
          // improvement), so termination is preserved.
          const bool nothing_to_lose = pi.share == 0.0 && pj.share == 0.0;
          if (nothing_to_lose ||
              (weakly_better(pu, pi, use_rep) &&
               weakly_better(pu, pj, use_rep) &&
               (strictly_better(pu, pi, use_rep) ||
                strictly_better(pu, pj, use_rep)))) {
            cs[i] = u;
            cs.erase(cs.begin() + static_cast<std::ptrdiff_t>(j));
            ++result.merges;
            merged = true;
            changed = true;
          }
        }
      }
    }

    // Split passes: first improving bipartition per coalition.
    bool split = true;
    while (split) {
      split = false;
      for (std::size_t i = 0; i < cs.size() && !split; ++i) {
        const game::Coalition c = cs[i];
        if (c.size() < 2) continue;
        const std::vector<std::size_t> members = c.members();
        const Point pc = point_of(c);
        const std::size_t half_space =
            std::size_t{1} << (members.size() - 1);
        const bool exhaustive = half_space <= config_.max_split_enumeration;
        // Pin members[0] into part A so each unordered bipartition is
        // visited once. Non-exhaustive mode tests only single-member
        // breakaways (mask = one bit), the cheapest useful subset.
        const auto test_split = [&](std::uint64_t mask) {
          game::Coalition a = game::Coalition::of({members[0]});
          for (std::size_t b = 1; b < members.size(); ++b) {
            if ((mask >> (b - 1)) & 1U) a = a.with(members[b]);
          }
          const game::Coalition rest(c.bits() & ~a.bits());
          if (a == c || rest.empty()) return false;
          const Point pa = point_of(a);
          const Point pb = point_of(rest);
          if (weakly_better(pa, pc, use_rep) &&
              weakly_better(pb, pc, use_rep) &&
              (strictly_better(pa, pc, use_rep) ||
               strictly_better(pb, pc, use_rep))) {
            cs[i] = a;
            cs.push_back(rest);
            ++result.splits;
            return true;
          }
          return false;
        };
        if (exhaustive) {
          for (std::uint64_t mask = 0; mask < half_space && !split; ++mask) {
            split = test_split(mask);
          }
        } else {
          // Breakaway of each single member other than members[0], plus
          // members[0] alone (mask 0).
          split = test_split(0);
          for (std::size_t b = 1; b < members.size() && !split; ++b) {
            // A = everyone except members[b]  <=>  mask with all bits but
            // (b-1) set.
            const std::uint64_t all =
                (members.size() - 1 >= 64)
                    ? ~std::uint64_t{0}
                    : ((std::uint64_t{1} << (members.size() - 1)) - 1);
            split = test_split(all & ~(std::uint64_t{1} << (b - 1)));
          }
        }
        if (split) changed = true;
      }
    }

    if (!changed) break;
  }

  result.structure = cs;
  // Execute on the feasible coalition with the highest individual payoff.
  double best = -std::numeric_limits<double>::infinity();
  for (const game::Coalition c : cs) {
    const auto& eval = v.evaluate(c);
    if (!eval.feasible) continue;
    const double share = game::equal_share(eval.value, c.size());
    if (share > best) {
      best = share;
      result.selected = c;
    }
  }
  if (!result.selected.empty()) {
    const auto& eval = v.evaluate(result.selected);
    result.success = true;
    result.mapping = eval.mapping;
    result.cost = eval.cost;
    result.value = eval.value;
    result.payoff_share = best;
    double rep = 0.0;
    for (const std::size_t g : result.selected.members()) {
      rep += result.global_reputation[g];
    }
    result.avg_global_reputation =
        rep / static_cast<double>(result.selected.size());
  }
  result.elapsed_seconds = timer.seconds();
  return result;
}

}  // namespace svo::core
