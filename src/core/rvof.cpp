#include "core/rvof.hpp"

namespace svo::core {

RvofMechanism::RvofMechanism(const ip::AssignmentSolver& solver,
                             MechanismConfig config)
    : VoFormationMechanism(solver, config) {}

std::size_t RvofMechanism::choose_removal(
    const trust::TrustGraph& /*trust*/, const std::vector<std::size_t>& members,
    const std::vector<double>& /*scores*/, util::Xoshiro256& rng) const {
  return rng.index(members.size());
}

}  // namespace svo::core
