/// \file mechanism.hpp
/// VO formation mechanisms — the paper's primary contribution.
///
/// Both TVOF (Algorithm 1) and the RVOF baseline share the same loop,
/// executed here by a simulated trusted party:
///
///   C <- all GSPs; L <- {}
///   repeat
///     map the program on C with the IP solver          (line 5)
///     if feasible: L <- L u {C}                        (lines 6-9)
///     x <- REPUTATION(C, E_C)                          (line 10)
///     remove one GSP from C                            (lines 11-12)
///   until the mapping was infeasible                   (line 13)
///   select argmax_{C in L} v(C)/|C| and execute        (lines 14-15)
///
/// The only difference between mechanisms is the removal rule (TVOF:
/// lowest recomputed reputation, random tie-break; RVOF: uniformly
/// random), which is exactly how the paper isolates the reputation
/// signal.
///
/// Reputation bookkeeping (DESIGN.md §4): the removal decision uses
/// scores recomputed on the shrinking VO's induced subgraph (Algorithm 1
/// line 10); the *metric* reported per iteration — the paper's "average
/// global reputation" of eq. (7), plotted in Figs. 3 and 5-8 — averages
/// the global (full-graph) reputation scores over the VO's members.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "game/coalition.hpp"
#include "game/value_function.hpp"
#include "ip/assignment.hpp"
#include "trust/reputation.hpp"
#include "trust/trust_graph.hpp"
#include "util/rng.hpp"

namespace svo::core {

/// How the final VO is chosen from the feasible list L.
enum class SelectionRule {
  /// argmax v(C)/|C| — the paper's rule (Algorithm 1 line 14).
  MaxIndividualPayoff,
  /// argmax (v(C)/|C|) * xbar(C) — the comparison rule of Fig. 4.
  MaxPayoffReputationProduct,
  /// Risk-aware extension: argmax (p(C) * P - C(T,C)) / |C|, where
  /// p(C) = prod of the members' trust-derived reliability estimates —
  /// the expected payoff under the all-or-nothing payment of Section
  /// II-A when each member delivers with its estimated probability.
  MaxExpectedIndividualPayoff,
};

/// Trust-derived reliability estimate of one GSP: the mean incoming
/// direct trust (each weight clamped into [0,1]), i.e. what its past
/// partners observed of its delivery. GSPs nobody has evidence about
/// default to `prior`.
[[nodiscard]] double estimate_reliability(const trust::TrustGraph& trust,
                                          std::size_t gsp,
                                          double prior = 0.5);

/// One mechanism iteration as recorded in the journal (drives Figs. 5-8).
struct IterationRecord {
  game::Coalition coalition;
  bool feasible = false;
  /// C(T, C): assignment cost (feasible iterations only).
  double cost = 0.0;
  /// v(C) = P - C(T, C), eq. (15).
  double value = 0.0;
  /// Equal share v(C)/|C|, eq. (18).
  double payoff_share = 0.0;
  /// eq. (7) over the *global* reputation scores of the members.
  double avg_global_reputation = 0.0;
  /// Average of the coalition-recomputed scores (= 1/|C|; see DESIGN.md).
  double avg_local_reputation = 0.0;
  /// GSP removed *after* this iteration; SIZE_MAX on the last iteration.
  std::size_t removed_gsp = SIZE_MAX;
  /// Solver telemetry for this coalition's IP (status, nodes explored,
  /// warm-start usage, repair moves).
  ip::SolveStats stats;
};

/// Full mechanism outcome.
struct MechanismResult {
  /// False when no VO could execute the program at all.
  bool success = false;
  /// The selected VO C_k.
  game::Coalition selected;
  /// Final task -> GSP mapping (original GSP indices).
  ip::Assignment mapping;
  double cost = 0.0;
  double value = 0.0;
  /// Individual payoff of each member of the selected VO (equal share).
  double payoff_share = 0.0;
  /// eq. (7) over global scores, of the selected VO.
  double avg_global_reputation = 0.0;
  /// Global reputation vector over all GSPs (input to the metric).
  std::vector<double> global_reputation;
  /// Per-iteration journal, in execution order (includes the terminal
  /// infeasible iteration).
  std::vector<IterationRecord> journal;
  /// Wall-clock mechanism time, seconds (paper Fig. 9).
  double elapsed_seconds = 0.0;
  /// Solver telemetry accumulated over all iterations: `stats.nodes` is
  /// the total node count, `stats.status` the last iteration's status,
  /// `stats.warm_start_used` whether any iteration reused an incumbent,
  /// `stats.repair_moves` the total repair work.
  ip::SolveStats stats;
};

/// Mechanism configuration shared by TVOF and RVOF.
struct MechanismConfig {
  trust::ReputationOptions reputation;
  SelectionRule selection = SelectionRule::MaxIndividualPayoff;
};

/// Whether the shrinking-coalition loop carries solve artifacts from
/// one iteration into the next (ip/warm_start.hpp).
enum class WarmStartPolicy {
  /// Every iteration solves cold, as the seed implementation did.
  Off,
  /// Repair the previous iteration's mapping after the removal and hand
  /// it to the solver as a warm incumbent, together with the full
  /// instance's per-task cost orders. Hints only tighten pruning: a
  /// solver that runs to proof selects a bit-identical VO at identical
  /// cost (enforced by tests/core/warm_start_test.cpp).
  Incremental,
};

/// Everything one VO-formation run needs, as a single value. The
/// unified entry point of VoFormationMechanism::run; the positional
/// run() overloads are thin wrappers that build one of these.
///
/// Referenced objects (instance, trust, rng) must outlive the call.
struct FormationRequest {
  const ip::AssignmentInstance& instance;
  const trust::TrustGraph& trust;
  /// Drives tie-breaking / random removal. Consumed identically under
  /// both warm-start policies, so removal sequences match bit for bit.
  util::Xoshiro256& rng;
  /// Candidate pool Algorithm 1 starts from; empty means the grand
  /// coalition over all of the instance's GSPs.
  game::Coalition candidates{};
  WarmStartPolicy warm_start = WarmStartPolicy::Incremental;

  // --- Service scheduling metadata (svc::FormationService) ---
  // The synchronous run() ignores the three fields below; they shape how
  // the asynchronous service queues, orders, expires and retries the
  // request (DESIGN.md §4h). svc validates them at submit with typed
  // InvalidArgument checks.

  /// Relative deadline, wall seconds from service admission; infinity =
  /// none. A request still queued past its deadline terminates as
  /// DeadlineExceeded *before* any solve; 0 expires at first dispatch
  /// (the deterministic-expiry idiom tests and benches rely on).
  double deadline_seconds = std::numeric_limits<double>::infinity();
  /// Drain order within a shard: higher priority first, then earlier
  /// deadline (EDF), then admission order.
  std::int32_t priority = 0;
  /// Retry budget on a failed solve: up to this many re-attempts with
  /// capped exponential backoff (ServiceOptions::retry_backoff_*).
  std::uint32_t max_retries = 0;
};

/// Abstract VO-formation mechanism (template method over the removal
/// rule). Thread-safe for concurrent run() calls: all mutable state is
/// local to run().
class VoFormationMechanism {
 public:
  /// `solver` must outlive the mechanism.
  VoFormationMechanism(const ip::AssignmentSolver& solver,
                       MechanismConfig config);
  virtual ~VoFormationMechanism() = default;

  /// Execute the mechanism on one request — the single implementation
  /// every other entry point funnels into. Results are deterministic in
  /// (instance, trust, rng state, candidates); the warm-start policy
  /// changes solver work, never the outcome (see WarmStartPolicy).
  [[nodiscard]] MechanismResult run(const FormationRequest& request) const;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] const MechanismConfig& config() const noexcept {
    return config_;
  }

 protected:
  /// Pick the member of `members` to remove. `scores[i]` is the
  /// recomputed reputation of members[i] on the current VO's subgraph
  /// (Algorithm 1 line 10); `trust` is provided so alternative removal
  /// rules (centrality ablations) can derive their own signal. Returns an
  /// index into `members`.
  [[nodiscard]] virtual std::size_t choose_removal(
      const trust::TrustGraph& trust, const std::vector<std::size_t>& members,
      const std::vector<double>& scores, util::Xoshiro256& rng) const = 0;

 private:
  const ip::AssignmentSolver& solver_;
  MechanismConfig config_;
};

}  // namespace svo::core
