#include "sim/multi_program.hpp"

namespace svo::sim {

MultiProgramResult run_multi_program(
    const core::VoFormationMechanism& mechanism,
    const MultiProgramConfig& config, std::uint64_t seed) {
  detail::require(config.programs > 0, "run_multi_program: programs == 0");
  detail::require(config.tasks_lo > 0 && config.tasks_lo <= config.tasks_hi,
                  "run_multi_program: bad task band");
  detail::require(config.arrival_intensity > 0.0,
                  "run_multi_program: arrival_intensity must be > 0");
  detail::require(config.deadline_slack >= 1.0,
                  "run_multi_program: deadline_slack must be >= 1");
  const std::size_t m = config.gen.params.num_gsps;

  util::Xoshiro256 rng(util::derive_seed(seed, 0xA11));
  const trust::TrustGraph trust = trust::random_trust_graph(
      m, config.gen.params.trust_edge_probability, rng);

  MultiProgramResult result;
  result.outcomes.reserve(config.programs);
  // busy_until per GSP in logical seconds.
  std::vector<double> busy_until(m, 0.0);
  double now = 0.0;
  std::size_t admitted = 0;
  double utilization_sum = 0.0;

  for (std::size_t i = 0; i < config.programs; ++i) {
    trace::ProgramSpec program;
    program.num_tasks = config.tasks_lo +
                        rng.index(config.tasks_hi - config.tasks_lo + 1);
    program.mean_task_runtime =
        rng.uniform(config.runtime_lo, config.runtime_hi);
    workload::GridInstance grid =
        workload::generate_instance(program, config.gen, rng);
    grid.assignment.deadline *= config.deadline_slack;

    ProgramOutcome outcome;
    outcome.index = i;
    outcome.arrival_time = now;

    std::vector<bool> free(m, false);
    std::size_t free_count = 0;
    for (std::size_t g = 0; g < m; ++g) {
      free[g] = busy_until[g] <= now;
      free_count += free[g];
    }
    outcome.available_gsps = free_count;
    utilization_sum +=
        static_cast<double>(m - free_count) / static_cast<double>(m);

    if (free_count > 0) {
      // Restrict the world to the free GSPs and run the mechanism there.
      std::vector<std::size_t> original;
      const ip::AssignmentInstance sub =
          grid.assignment.restrict_to(free, &original);
      const trust::TrustGraph sub_trust(
          trust.graph().induced_subgraph(free));
      const core::MechanismResult r = mechanism.run(core::FormationRequest{sub, sub_trust, rng});
      if (r.success) {
        outcome.admitted = true;
        ++admitted;
        game::Coalition vo;
        for (const std::size_t local : r.selected.members()) {
          vo = vo.with(original[local]);
        }
        outcome.vo = vo;
        outcome.payoff_share = r.payoff_share;
        outcome.busy_until = now + grid.assignment.deadline;
        for (const std::size_t g : vo.members()) {
          busy_until[g] = outcome.busy_until;
        }
        result.total_value += r.value;
      }
    }
    result.outcomes.push_back(outcome);
    // Next arrival: exponential gap with mean proportional to this
    // program's duration (intensity < 1 oversubscribes the grid).
    now += rng.exponential(
        1.0 / (config.arrival_intensity * grid.assignment.deadline));
  }

  result.admission_rate = static_cast<double>(admitted) /
                          static_cast<double>(config.programs);
  result.mean_utilization =
      utilization_sum / static_cast<double>(config.programs);
  return result;
}

}  // namespace svo::sim
