/// \file runner.hpp
/// Sweep runner: executes TVOF (and optionally RVOF) over all configured
/// program sizes and repetitions, aggregating exactly the series the
/// paper's Figures 1 (payoff), 2 (VO size), 3 (average reputation) and
/// 9 (execution time) plot.
#pragma once

#include <functional>

#include "core/distributed_tvof.hpp"
#include "sim/scenario.hpp"
#include "util/stats.hpp"

namespace svo::sim {

/// Aggregates over the repetitions of one (mechanism, size) cell.
struct MechanismStats {
  util::RunningStats payoff;          ///< individual payoff (Fig. 1)
  util::RunningStats vo_size;         ///< final VO size (Fig. 2)
  util::RunningStats avg_reputation;  ///< eq. (7) of final VO (Fig. 3)
  util::RunningStats exec_seconds;    ///< mechanism wall clock (Fig. 9)
  std::size_t failures = 0;           ///< runs with no feasible VO at all
};

/// One sweep point = one program size.
struct SweepPoint {
  std::size_t num_tasks = 0;
  MechanismStats tvof;
  MechanismStats rvof;
};

/// Full sweep result.
struct SweepResult {
  std::vector<SweepPoint> points;
};

/// Optional per-run observer (size, repetition, mechanism name, result).
using RunObserver = std::function<void(
    std::size_t, std::size_t, const std::string&, const core::MechanismResult&)>;

/// Runs the paper's sweep protocol.
class ExperimentRunner {
 public:
  explicit ExperimentRunner(ExperimentConfig cfg);

  /// Execute all (size x repetition) cells. Deterministic in the config
  /// seed regardless of `cfg.parallel`.
  [[nodiscard]] SweepResult run_sweep(const RunObserver& observer = {}) const;

  /// Run both mechanisms on a single prepared scenario (used by the
  /// per-program figure harnesses and the examples).
  struct PairResult {
    core::MechanismResult tvof;
    core::MechanismResult rvof;
  };
  [[nodiscard]] PairResult run_pair(const Scenario& scenario) const;

  /// Run both mechanisms on one scenario under the trusted-party
  /// protocol (core/distributed_tvof), surfacing the ProtocolMetrics —
  /// including the fault/recovery counters — next to each decision.
  /// With `options.faults` all-zero the decisions are identical to
  /// run_pair() on the same scenario.
  struct DistributedPairResult {
    core::DistributedRunResult tvof;
    core::DistributedRunResult rvof;
  };
  [[nodiscard]] DistributedPairResult run_pair_distributed(
      const Scenario& scenario,
      const core::ProtocolOptions& options = {}) const;

  [[nodiscard]] const ScenarioFactory& scenarios() const noexcept {
    return factory_;
  }
  [[nodiscard]] const ExperimentConfig& config() const noexcept {
    return factory_.config();
  }

 private:
  ScenarioFactory factory_;
};

}  // namespace svo::sim
