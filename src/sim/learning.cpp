#include "sim/learning.hpp"

namespace svo::sim {

ClosedLoopResult run_closed_loop(const core::VoFormationMechanism& mechanism,
                                 const ReliabilityModel& reliability,
                                 const ClosedLoopConfig& config,
                                 std::uint64_t seed) {
  const std::size_t m = config.gen.params.num_gsps;
  detail::require(reliability.size() == m,
                  "run_closed_loop: reliability size != num_gsps");
  detail::require(config.rounds > 0, "run_closed_loop: rounds == 0");
  detail::require(config.initial_trust > 0.0,
                  "run_closed_loop: initial_trust must be > 0");
  detail::require(config.deadline_slack >= 1.0,
                  "run_closed_loop: deadline_slack must be >= 1");

  // Complete initial trust graph: everyone starts equally credible.
  trust::TrustGraph trust(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < m; ++j) {
      if (i != j) trust.set_trust(i, j, config.initial_trust);
    }
  }

  // Independent streams: the *same* seed gives two mechanisms identical
  // programs and identical execution randomness (fair comparison).
  util::Xoshiro256 program_rng(util::derive_seed(seed, 1));
  util::Xoshiro256 execution_rng(util::derive_seed(seed, 2));
  util::Xoshiro256 mechanism_rng(util::derive_seed(seed, 3));

  ClosedLoopResult result;
  result.rounds.reserve(config.rounds);
  std::size_t formed = 0;
  std::size_t completed = 0;
  double sum_realized = 0.0;
  double sum_promised = 0.0;

  for (std::size_t round = 0; round < config.rounds; ++round) {
    trace::ProgramSpec program;
    program.num_tasks = config.num_tasks;
    program.mean_task_runtime =
        program_rng.uniform(config.runtime_lo, config.runtime_hi);
    workload::GridInstance grid =
        workload::generate_instance(program, config.gen, program_rng);
    grid.assignment.deadline *= config.deadline_slack;

    RoundRecord rec;
    rec.round = round;
    const core::MechanismResult r =
        mechanism.run(core::FormationRequest{grid.assignment, trust, mechanism_rng});
    if (r.success) {
      rec.formed = true;
      ++formed;
      rec.vo = r.selected;
      rec.promised_share = r.payoff_share;
      std::size_t unreliable = 0;
      for (const std::size_t g : r.selected.members()) {
        if (reliability.theta(g) < 0.5) ++unreliable;
      }
      rec.unreliable_member_fraction =
          static_cast<double>(unreliable) /
          static_cast<double>(r.selected.size());

      const ExecutionOutcome outcome = simulate_execution(
          grid.assignment, r.mapping, r.selected, reliability, execution_rng);
      rec.completed = outcome.completed;
      rec.realized_share = outcome.realized_share;
      rec.delivery_rate = outcome.delivery_rate;
      completed += outcome.completed ? 1 : 0;
      sum_realized += outcome.realized_share;
      sum_promised += rec.promised_share;

      update_trust_from_outcome(trust, r.selected, outcome,
                                config.trust_update_rate);
    }
    result.rounds.push_back(rec);
  }

  if (formed > 0) {
    result.completion_rate =
        static_cast<double>(completed) / static_cast<double>(formed);
    result.mean_realized_share = sum_realized / static_cast<double>(formed);
    result.mean_promised_share = sum_promised / static_cast<double>(formed);
  }
  return result;
}

}  // namespace svo::sim
