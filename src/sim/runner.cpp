#include "sim/runner.hpp"

#include <mutex>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace svo::sim {

ExperimentRunner::ExperimentRunner(ExperimentConfig cfg)
    : factory_(std::move(cfg)) {}

ExperimentRunner::PairResult ExperimentRunner::run_pair(
    const Scenario& scenario) const {
  const ExperimentConfig& cfg = config();
  const ip::BnbAssignmentSolver solver(cfg.solver);
  const core::TvofMechanism tvof(solver, cfg.mechanism);
  const core::RvofMechanism rvof(solver, cfg.mechanism);

  PairResult pr;
  util::Xoshiro256 tvof_rng(scenario.tvof_seed);
  pr.tvof = tvof.run(core::FormationRequest{scenario.instance.assignment, scenario.trust, tvof_rng});
  if (cfg.run_rvof) {
    util::Xoshiro256 rvof_rng(scenario.rvof_seed);
    pr.rvof = rvof.run(core::FormationRequest{scenario.instance.assignment, scenario.trust, rvof_rng});
  }
  return pr;
}

ExperimentRunner::DistributedPairResult ExperimentRunner::run_pair_distributed(
    const Scenario& scenario, const core::ProtocolOptions& options) const {
  const ExperimentConfig& cfg = config();
  const ip::BnbAssignmentSolver solver(cfg.solver);
  const core::TvofMechanism tvof(solver, cfg.mechanism);
  const core::RvofMechanism rvof(solver, cfg.mechanism);

  DistributedPairResult pr;
  util::Xoshiro256 tvof_rng(scenario.tvof_seed);
  pr.tvof = core::run_distributed(tvof, scenario.instance.assignment,
                                  scenario.trust, tvof_rng, options);
  if (cfg.run_rvof) {
    util::Xoshiro256 rvof_rng(scenario.rvof_seed);
    pr.rvof = core::run_distributed(rvof, scenario.instance.assignment,
                                    scenario.trust, rvof_rng, options);
  }
  return pr;
}

SweepResult ExperimentRunner::run_sweep(const RunObserver& observer) const {
  const ExperimentConfig& cfg = config();
  obs::Span sweep_span("sim.sweep", "sim");
  if (sweep_span.active()) {
    sweep_span.arg("sizes", static_cast<double>(cfg.task_sizes.size()));
    sweep_span.arg("repetitions", static_cast<double>(cfg.repetitions));
    sweep_span.arg("parallel", cfg.parallel ? 1.0 : 0.0);
  }
  SweepResult result;
  result.points.resize(cfg.task_sizes.size());

  for (std::size_t si = 0; si < cfg.task_sizes.size(); ++si) {
    const std::size_t n = cfg.task_sizes[si];
    SweepPoint& point = result.points[si];
    point.num_tasks = n;

    // One sweep cell = one (task size, all repetitions) block. The cell
    // span brackets the parallel repetition fan-out; each repetition's
    // mechanism runs carry their own core.mechanism.run spans (tagged
    // with the worker thread's recorder tid).
    obs::Span cell_span("sim.sweep.cell", "sim");
    if (cell_span.active()) {
      cell_span.arg("tasks", static_cast<double>(n));
      cell_span.arg("repetitions", static_cast<double>(cfg.repetitions));
      obs::Recorder::instance().metrics().counter("sim.sweep.cells").add();
    }

    // Repetitions are independent: run them concurrently, then merge in
    // repetition order so parallel and serial sweeps emit identical stats.
    std::vector<PairResult> reps(cfg.repetitions);
    const auto run_one = [&](std::size_t r) {
      const Scenario scenario = factory_.make(n, r);
      reps[r] = run_pair(scenario);
    };
    if (cfg.parallel && util::ThreadPool::global().size() > 1) {
      util::parallel_for(util::ThreadPool::global(), 0, cfg.repetitions,
                         run_one, /*grain=*/1);
    } else {
      for (std::size_t r = 0; r < cfg.repetitions; ++r) run_one(r);
    }

    const auto accumulate = [](MechanismStats& stats,
                               const core::MechanismResult& res) {
      stats.exec_seconds.add(res.elapsed_seconds);
      if (!res.success) {
        ++stats.failures;
        return;
      }
      stats.payoff.add(res.payoff_share);
      stats.vo_size.add(static_cast<double>(res.selected.size()));
      stats.avg_reputation.add(res.avg_global_reputation);
    };
    for (std::size_t r = 0; r < cfg.repetitions; ++r) {
      accumulate(point.tvof, reps[r].tvof);
      if (observer) observer(n, r, "TVOF", reps[r].tvof);
      if (cfg.run_rvof) {
        accumulate(point.rvof, reps[r].rvof);
        if (observer) observer(n, r, "RVOF", reps[r].rvof);
      }
    }
  }
  return result;
}

}  // namespace svo::sim
