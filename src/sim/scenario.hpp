/// \file scenario.hpp
/// Scenario construction: trace -> program -> Table I instance + trust
/// graph, deterministically keyed by (root seed, task count, repetition).
#pragma once

#include "sim/config.hpp"
#include "trust/trust_graph.hpp"

namespace svo::sim {

/// Everything one mechanism run consumes.
struct Scenario {
  workload::GridInstance instance;
  trust::TrustGraph trust{0};
  /// Independent RNG streams for each mechanism's tie-breaking, derived
  /// from the scenario key so TVOF and RVOF never share draws.
  std::uint64_t tvof_seed = 0;
  std::uint64_t rvof_seed = 0;
};

/// Generates scenarios against one synthetic trace (built once; the
/// trace is the expensive immutable input, exactly like the archive log
/// the paper loads once).
class ScenarioFactory {
 public:
  explicit ScenarioFactory(ExperimentConfig cfg);

  /// Build the scenario for (num_tasks, repetition). Deterministic:
  /// the same key always yields the same scenario. Throws InvalidArgument
  /// when the trace lacks an eligible job of that size.
  [[nodiscard]] Scenario make(std::size_t num_tasks,
                              std::size_t repetition) const;

  [[nodiscard]] const trace::Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const ExperimentConfig& config() const noexcept { return cfg_; }

 private:
  ExperimentConfig cfg_;
  trace::Trace trace_;
};

}  // namespace svo::sim
