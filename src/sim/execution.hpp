/// \file execution.hpp
/// Delivered-service simulation — the behaviour the paper's introduction
/// motivates but never simulates: "a GSP agrees to provide some
/// resources, but it fails to deliver ... As a result, the application
/// program could not be executed by that VO."
///
/// Each GSP has a hidden reliability theta in [0, 1]; after a mechanism
/// selects a VO and a mapping, execution is simulated: each member
/// either delivers *all* of its assigned work (probability theta) or
/// fails as a unit — the paper's failure mode is a provider not
/// delivering promised resources, not individual task crashes. Under the paper's
/// payment rule the user pays P only when the whole program completes by
/// the deadline, so one unreliable member can wipe out the VO's profit.
/// Members observe each other's delivery and update mutual trust, which
/// closes the loop: over repeated programs TVOF's reputation scores
/// learn the hidden thetas, while RVOF keeps gambling.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mechanism.hpp"
#include "game/coalition.hpp"
#include "ip/assignment.hpp"
#include "trust/trust_graph.hpp"
#include "util/rng.hpp"

namespace svo::sim {

/// Hidden per-GSP reliability.
class ReliabilityModel {
 public:
  /// Explicit thetas (each in [0, 1]).
  explicit ReliabilityModel(std::vector<double> thetas);

  /// m GSPs with thetas drawn from a two-point mixture: reliable
  /// (uniform in [reliable_lo, 1]) with probability `reliable_fraction`,
  /// unreliable (uniform in [0, unreliable_hi]) otherwise. A crisp
  /// population that makes learning curves readable.
  static ReliabilityModel bimodal(std::size_t m, double reliable_fraction,
                                  double reliable_lo, double unreliable_hi,
                                  util::Xoshiro256& rng);

  [[nodiscard]] std::size_t size() const noexcept { return thetas_.size(); }
  [[nodiscard]] double theta(std::size_t g) const;
  [[nodiscard]] const std::vector<double>& thetas() const noexcept {
    return thetas_;
  }

 private:
  std::vector<double> thetas_;
};

/// Outcome of executing one mapped program.
struct ExecutionOutcome {
  /// Whole program delivered (every task succeeded)?
  bool completed = false;
  /// Tasks delivered per GSP (original indices) and tasks assigned.
  std::vector<std::size_t> delivered;
  std::vector<std::size_t> assigned;
  /// Realized coalition profit: P - C(T,C) when completed, else -C(T,C)
  /// on the paper's all-or-nothing payment (costs are sunk).
  double realized_value = 0.0;
  /// Realized per-member share (equal sharing of realized_value).
  double realized_share = 0.0;
  /// Fraction of tasks delivered.
  double delivery_rate = 0.0;
};

/// Simulate the execution of `mapping` (task -> original GSP index) for
/// a program with payment/cost taken from `inst`. Deterministic in `rng`.
[[nodiscard]] ExecutionOutcome simulate_execution(
    const ip::AssignmentInstance& inst, const ip::Assignment& mapping,
    game::Coalition vo, const ReliabilityModel& reliability,
    util::Xoshiro256& rng);

/// Close the loop: members of the VO update their mutual trust from the
/// observed per-GSP delivery rates (EWMA with `rate`). GSPs outside the
/// VO observe nothing, exactly as in the paper's direct-trust model.
void update_trust_from_outcome(trust::TrustGraph& trust,
                               game::Coalition vo,
                               const ExecutionOutcome& outcome,
                               double rate = 0.3);

/// Members of `vo` that defaulted in `outcome`: assigned work but
/// delivered none of it (the paper's all-or-nothing failure mode).
[[nodiscard]] game::Coalition failed_members(game::Coalition vo,
                                             const ExecutionOutcome& outcome);

/// VO repair after mid-execution member failure.
struct RepairConfig {
  /// Re-formation attempts after a failed execution.
  std::size_t max_repair_rounds = 3;
};

/// Outcome of execute_with_repair.
struct RepairedExecution {
  /// Whole program eventually delivered?
  bool completed = false;
  /// Outcome of the last execution attempt.
  ExecutionOutcome final_outcome;
  /// Formation used by the last attempt (selected VO + mapping). Its
  /// mapping always assigns every task exactly once, to survivors only.
  core::MechanismResult final_formation;
  /// Re-formations performed (0 = first execution succeeded or repair
  /// was impossible).
  std::size_t repair_rounds = 0;
  /// Every GSP that defaulted across all attempts.
  game::Coalition failed;
  /// Sum of realized values over all attempts: each failed attempt sinks
  /// its costs; the completing attempt earns P - C(T,C).
  double total_realized_value = 0.0;
};

/// Execute `formation`'s mapping; when members default, repair the VO by
/// re-running `mechanism` over the survivors (all GSPs minus every
/// defaulter so far) and re-executing, up to cfg.max_repair_rounds
/// times. Tasks are never silently dropped: either the returned
/// formation maps every task onto survivors, or completed == false and
/// the failure is explicit. Deterministic in `rng`.
[[nodiscard]] RepairedExecution execute_with_repair(
    const core::VoFormationMechanism& mechanism,
    const ip::AssignmentInstance& inst, const trust::TrustGraph& trust,
    const core::MechanismResult& formation,
    const ReliabilityModel& reliability, util::Xoshiro256& rng,
    const RepairConfig& cfg = {});

}  // namespace svo::sim
