/// \file config.hpp
/// Experiment configuration: the paper's full protocol (Section IV-A) in
/// one struct, every knob defaulted to Table I / the text.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mechanism.hpp"
#include "ip/bnb.hpp"
#include "trace/atlas_synth.hpp"
#include "trace/lublin.hpp"
#include "workload/instance_gen.hpp"

namespace svo::sim {

/// Configuration of a sweep experiment (Figs. 1, 2, 3, 9) and the
/// scenario source for the per-program figures (Figs. 4-8).
struct ExperimentConfig {
  /// Table I parameters + Braun cost generation + feasibility policy.
  workload::InstanceGenOptions gen;
  /// Which synthetic workload family drives the scenarios.
  enum class TraceModel {
    AtlasLike,         ///< statistical stand-in for LLNL-Atlas (default)
    LublinFeitelson,   ///< the standard citable batch model
  };
  TraceModel trace_model = TraceModel::AtlasLike;
  /// Synthetic-trace options (statistical stand-in for LLNL-Atlas).
  trace::AtlasSynthOptions trace;
  /// Options for the Lublin-Feitelson family (used when selected).
  trace::LublinOptions lublin;
  /// Program sizes evaluated (paper: six sizes, 256..8192 tasks).
  std::vector<std::size_t> task_sizes{256, 512, 1024, 2048, 4096, 8192};
  /// Repetitions per size (paper: "a series of ten experiments").
  std::size_t repetitions = 10;
  /// Root seed; every scenario and mechanism stream derives from it.
  std::uint64_t seed = 2012'0910;
  /// IP-B&B budget shared by both mechanisms.
  ip::BnbOptions solver;
  /// Reputation + selection-rule configuration.
  core::MechanismConfig mechanism;
  /// Run the RVOF baseline next to TVOF on identical instances.
  bool run_rvof = true;
  /// Run repetitions concurrently on the global thread pool.
  bool parallel = true;
};

}  // namespace svo::sim
