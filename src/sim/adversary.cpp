#include "sim/adversary.hpp"

#include <memory>
#include <optional>

#include "core/rvof.hpp"
#include "core/tvof.hpp"

namespace svo::sim {

namespace {

std::unique_ptr<core::VoFormationMechanism> make_mechanism(
    MechanismKind kind, const ip::AssignmentSolver& solver,
    const core::MechanismConfig& config) {
  switch (kind) {
    case MechanismKind::Rvof:
      return std::make_unique<core::RvofMechanism>(solver, config);
    case MechanismKind::Tvof:
      break;
  }
  return std::make_unique<core::TvofMechanism>(solver, config);
}

}  // namespace

AdversarialLoopResult run_adversarial_loop(
    MechanismKind kind, const ip::AssignmentSolver& solver,
    const core::MechanismConfig& mechanism_config,
    const ReliabilityModel& reliability, const AdversarialLoopConfig& config,
    std::uint64_t seed) {
  const std::size_t m = config.loop.gen.params.num_gsps;
  detail::require(reliability.size() == m,
                  "run_adversarial_loop: reliability size != num_gsps");
  detail::require(config.loop.rounds > 0, "run_adversarial_loop: rounds == 0");
  detail::require(config.loop.initial_trust > 0.0,
                  "run_adversarial_loop: initial_trust must be > 0");
  detail::require(config.loop.deadline_slack >= 1.0,
                  "run_adversarial_loop: deadline_slack must be >= 1");
  detail::require(config.attacker_theta >= 0.0 && config.attacker_theta <= 1.0,
                  "run_adversarial_loop: attacker_theta must be in [0,1]");
  config.defenses.validate();

  // The injector exists only for a non-empty scenario; the empty case
  // must stay byte-for-byte the plain closed loop.
  std::optional<trust::AttackInjector> injector;
  if (!config.attack.empty()) injector.emplace(config.attack, m);

  // Attackers promise like everyone else but deliver at attacker_theta.
  std::vector<double> thetas = reliability.thetas();
  if (injector) {
    for (const std::size_t a : injector->attackers()) {
      thetas[a] = config.attacker_theta;
    }
  }
  const ReliabilityModel hidden(std::move(thetas));

  // Honest graph: evolves only through genuinely observed interactions —
  // attacks never touch it. Defaults to run_closed_loop's complete graph
  // at initial_trust.
  trust::TrustGraph honest(m);
  if (config.initial_trust_graph) {
    detail::require(config.initial_trust_graph->size() == m,
                    "run_adversarial_loop: initial trust graph size != "
                    "num_gsps");
    honest = *config.initial_trust_graph;
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t j = 0; j < m; ++j) {
        if (i != j) honest.set_trust(i, j, config.loop.initial_trust);
      }
    }
  }

  // Identical streams to run_closed_loop: same seed, same programs, same
  // execution luck across arms.
  util::Xoshiro256 program_rng(util::derive_seed(seed, 1));
  util::Xoshiro256 execution_rng(util::derive_seed(seed, 2));
  util::Xoshiro256 mechanism_rng(util::derive_seed(seed, 3));

  // Reference ranking: the literal pipeline on the honest graph.
  core::MechanismConfig literal_config = mechanism_config;
  literal_config.reputation.robust = trust::RobustOptions{};
  const trust::ReputationEngine literal_engine(literal_config.reputation);

  AdversarialLoopResult result;
  result.rounds.reserve(config.loop.rounds);
  if (injector) result.attackers = injector->attackers();
  std::size_t formed = 0;
  std::size_t completed = 0;
  double sum_realized = 0.0;
  double sum_promised = 0.0;
  double sum_corruption = 0.0;

  for (std::size_t round = 0; round < config.loop.rounds; ++round) {
    trace::ProgramSpec program;
    program.num_tasks = config.loop.num_tasks;
    program.mean_task_runtime =
        program_rng.uniform(config.loop.runtime_lo, config.loop.runtime_hi);
    workload::GridInstance grid =
        workload::generate_instance(program, config.loop.gen, program_rng);
    grid.assignment.deadline *= config.loop.deadline_slack;

    // The adversary rewrites this round's *reports*, never the honest
    // history — attacks do not compound across rounds.
    trust::TrustGraph reported = honest;
    AdversarialRoundRecord rec;
    rec.round = round;
    if (injector) {
      const trust::AttackRound ar = injector->apply(reported, round);
      rec.attack_active = ar.active;
      rec.attack_edges = ar.edges_touched;
    }

    // This arm's mechanism, with this round's freshness list installed.
    core::MechanismConfig arm_config = mechanism_config;
    arm_config.reputation.robust = config.defenses;
    if (config.defenses.enabled) {
      arm_config.reputation.robust.fresh =
          injector ? injector->fresh_identities(round, config.quarantine_rounds)
                   : std::vector<std::size_t>{};
    }
    const std::unique_ptr<core::VoFormationMechanism> mechanism =
        make_mechanism(kind, solver, arm_config);

    rec.rank_corruption = trust::rank_corruption(
        literal_engine.compute(honest).scores,
        trust::ReputationEngine(arm_config.reputation)
            .compute(reported)
            .scores);
    sum_corruption += rec.rank_corruption;

    const core::MechanismResult r = mechanism->run(
        core::FormationRequest{grid.assignment, reported, mechanism_rng});
    if (r.success) {
      rec.formed = true;
      ++formed;
      rec.vo = r.selected;
      rec.promised_share = r.payoff_share;
      std::size_t unreliable = 0;
      std::size_t adversarial = 0;
      for (const std::size_t g : r.selected.members()) {
        if (hidden.theta(g) < 0.5) ++unreliable;
        if (injector && injector->is_attacker(g)) ++adversarial;
      }
      rec.unreliable_member_fraction =
          static_cast<double>(unreliable) /
          static_cast<double>(r.selected.size());
      rec.attacker_selected_fraction =
          static_cast<double>(adversarial) /
          static_cast<double>(r.selected.size());

      const ExecutionOutcome outcome = simulate_execution(
          grid.assignment, r.mapping, r.selected, hidden, execution_rng);
      rec.completed = outcome.completed;
      rec.realized_share = outcome.realized_share;
      rec.delivery_rate = outcome.delivery_rate;
      completed += outcome.completed ? 1 : 0;
      sum_realized += outcome.realized_share;
      sum_promised += rec.promised_share;

      update_trust_from_outcome(honest, r.selected, outcome,
                                config.loop.trust_update_rate);
    }
    result.rounds.push_back(std::move(rec));
  }

  if (formed > 0) {
    result.completion_rate =
        static_cast<double>(completed) / static_cast<double>(formed);
    result.mean_realized_share = sum_realized / static_cast<double>(formed);
    result.mean_promised_share = sum_promised / static_cast<double>(formed);
  }
  result.mean_rank_corruption =
      sum_corruption / static_cast<double>(config.loop.rounds);
  return result;
}

}  // namespace svo::sim
