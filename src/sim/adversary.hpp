/// \file adversary.hpp
/// Closed-loop resilience harness: the trust-learning loop of
/// learning.hpp with an adversary wedged between observation and
/// decision. Each round the attackers perturb the *reported* trust graph
/// (trust/attack.hpp) that the mechanism forms its VO from, while honest
/// execution outcomes keep updating the underlying honest graph; the
/// attackers' hidden reliability is poor, so a mechanism fooled into
/// selecting them loses realized value. Defenses (trust/robust.hpp) are
/// switched per arm through the mechanism's ReputationOptions, which is
/// exactly how bench_extension_attacks compares TVOF-literal,
/// TVOF-robust and RVOF under the same attack.
///
/// With an empty scenario and defenses off, run_adversarial_loop is
/// bit-identical to run_closed_loop for the same (mechanism kind,
/// config, reliability, seed) — enforced by
/// tests/sim/adversary_test.cpp.
#pragma once

#include <optional>

#include "core/mechanism.hpp"
#include "ip/assignment.hpp"
#include "sim/learning.hpp"
#include "trust/attack.hpp"
#include "trust/robust.hpp"

namespace svo::sim {

/// Which formation mechanism an arm runs. The harness constructs the
/// mechanism internally (per round, so defense state like the quarantine
/// freshness list can vary round to round).
enum class MechanismKind {
  Tvof,
  Rvof,
};

/// One arm of the resilience experiment.
struct AdversarialLoopConfig {
  /// The underlying closed loop (rounds, tasks, trust update rate, ...).
  ClosedLoopConfig loop;
  /// The attack every round's reported graph is perturbed with. An empty
  /// scenario leaves the loop untouched (and burns no randomness).
  trust::AttackScenario attack;
  /// Defenses for this arm; `defenses.enabled == false` runs the literal
  /// pipeline. `defenses.fresh` is overwritten every round with
  /// AttackInjector::fresh_identities(round, quarantine_rounds).
  trust::RobustOptions defenses;
  /// Hidden delivery reliability forced onto the attacker set: attackers
  /// promise but underdeliver, which is what makes believing their
  /// stuffed ballots costly in *realized* value.
  double attacker_theta = 0.15;
  /// Optional initial honest trust graph (must have size num_gsps).
  /// Default (nullopt): the complete graph at loop.initial_trust, exactly
  /// as run_closed_loop starts — required for the bit-identical
  /// equivalence guarantee. The benchmark instead seeds an informative
  /// graph (direct trust tracking the hidden thetas): the regime where
  /// reputation carries real signal and attacks have something to
  /// corrupt.
  std::optional<trust::TrustGraph> initial_trust_graph;
  /// How many rounds a re-entered identity counts as fresh.
  std::size_t quarantine_rounds = 3;
};

/// RoundRecord plus the adversarial telemetry.
struct AdversarialRoundRecord : RoundRecord {
  /// Whether the attack perturbed this round's reported graph.
  bool attack_active = false;
  /// Trust reports the injector rewrote this round.
  std::size_t attack_edges = 0;
  /// Fraction of the selected VO controlled by the adversary.
  double attacker_selected_fraction = 0.0;
  /// Normalized Kendall-tau distance between the all-GSP reputation
  /// ranking on the *honest* graph (literal pipeline) and the ranking
  /// this arm's pipeline computed on the *reported* graph — how far the
  /// attack displaced the ranking the mechanism acted on.
  double rank_corruption = 0.0;
};

/// Aggregate result of one arm.
struct AdversarialLoopResult {
  std::vector<AdversarialRoundRecord> rounds;
  double completion_rate = 0.0;      ///< completed / formed
  double mean_realized_share = 0.0;  ///< over formed rounds
  double mean_promised_share = 0.0;  ///< over formed rounds
  double mean_rank_corruption = 0.0;  ///< over all rounds
  /// The adversary's identities (strictly increasing; empty when the
  /// scenario is empty).
  std::vector<std::size_t> attackers;
};

/// Run one arm. Deterministic in `seed`, with the identical program /
/// execution / mechanism RNG streams as run_closed_loop, so arms that
/// share a seed face the same programs and the same execution luck —
/// differences are attributable to the attack and the defense alone.
/// `reliability` is the honest population; attacker thetas are overridden
/// by `config.attacker_theta` internally.
[[nodiscard]] AdversarialLoopResult run_adversarial_loop(
    MechanismKind kind, const ip::AssignmentSolver& solver,
    const core::MechanismConfig& mechanism_config,
    const ReliabilityModel& reliability, const AdversarialLoopConfig& config,
    std::uint64_t seed);

}  // namespace svo::sim
