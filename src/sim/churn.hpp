/// \file churn.hpp
/// Deterministic GSP churn for the streaming grid economy
/// (sim/stream_engine.hpp): seeded join/leave/crash/rejoin schedules
/// over virtual time, plus the re-entry quarantine ledger that keeps
/// reputation meaningful across identity churn (the PR 3 defense,
/// driven here by *provider* churn instead of whitewashing attackers).
///
/// A schedule is a pure value: build_churn_schedule(options, m, horizon)
/// always produces the same event list for the same inputs, so churned
/// runs replay bit-identically (tests/sim/churn_test.cpp). Semantics:
///
///  - Leave: graceful departure — the engine lets the GSP drain its
///    current VO before it goes;
///  - Crash: immediate failure — mid-formation it aborts the pending
///    award, mid-execution it triggers VO repair over the survivors;
///  - Rejoin: the GSP returns to the live pool and enters re-entry
///    quarantine for the next `quarantine_formations` formation runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace svo::sim {

/// What happens to a GSP at one schedule point.
enum class ChurnEventKind {
  Leave,   ///< graceful departure (drains its current VO first)
  Crash,   ///< immediate failure (mid-formation / mid-execution)
  Rejoin,  ///< returns to the live pool (quarantined on re-entry)
};

/// Human-readable name ("leave", "crash", "rejoin").
[[nodiscard]] const char* to_string(ChurnEventKind kind) noexcept;

/// One scheduled churn event.
struct ChurnEvent {
  double time = 0.0;
  ChurnEventKind kind = ChurnEventKind::Leave;
  std::size_t gsp = 0;

  friend bool operator==(const ChurnEvent& a, const ChurnEvent& b) noexcept {
    return a.time == b.time && a.kind == b.kind && a.gsp == b.gsp;
  }
};

/// Churn model of one streaming run. All-zero rates mean "no churn" —
/// the regime in which a streaming run is bit-identical to the one-shot
/// sweep (see StreamEngine).
struct ChurnOptions {
  /// Graceful departures per GSP per virtual second while live.
  double leave_rate = 0.0;
  /// Crashes per GSP per virtual second while live.
  double crash_rate = 0.0;
  /// Mean absence before a rejoin, virtual seconds (must be > 0 when
  /// either rate is).
  double mean_absence_seconds = 3600.0;
  /// Probability a departed GSP ever returns; 0 = all departures are
  /// permanent, exactly the paper's defaulting provider.
  double rejoin_probability = 1.0;
  /// Seed of the schedule's private stream (per-GSP substreams derive
  /// from it, so one GSP's schedule is independent of the others').
  std::uint64_t seed = 0xC1124;
  /// Hard cap on events per GSP — bounds the schedule regardless of
  /// rates x horizon.
  std::size_t max_events_per_gsp = 64;

  /// True when any churn can occur.
  [[nodiscard]] bool enabled() const noexcept {
    return leave_rate > 0.0 || crash_rate > 0.0;
  }

  /// Throws InvalidArgument on negative/non-finite rates, a non-positive
  /// absence mean (with churn enabled), an out-of-range rejoin
  /// probability, or a zero event cap.
  void validate() const;
};

/// Build the deterministic event schedule for `num_gsps` GSPs over
/// virtual times [0, horizon). Events are sorted by (time, gsp, kind);
/// per GSP the sequence alternates live -> (Leave|Crash) -> Rejoin ->
/// live -> ... and stops at the horizon, at the per-GSP cap, or at a
/// permanent departure. Validates `options` and requires horizon > 0.
[[nodiscard]] std::vector<ChurnEvent> build_churn_schedule(
    const ChurnOptions& options, std::size_t num_gsps, double horizon);

/// Re-entry quarantine bookkeeping, keyed by *formation count* — the
/// rating-count semantics of the PR 3 defense: a rejoined GSP is "fresh"
/// for exactly the next `window` formation runs after its rejoin, then
/// ages out. Crucially, a rejoin arms the quarantine ONCE; subsequent
/// formations must never re-arm it (the bug class
/// tests/sim/churn_test.cpp pins): only another rejoin restarts the
/// clock.
class QuarantineLedger {
 public:
  /// `window` = formation runs a re-entered identity stays fresh for.
  /// 0 disables quarantine (fresh() is always empty).
  explicit QuarantineLedger(std::size_t window) : window_(window) {}

  /// Record that `gsp` rejoined just before formation #`formation`.
  /// It will be fresh for formations [formation, formation + window).
  void record_rejoin(std::size_t gsp, std::size_t formation);

  /// GSP ids fresh at formation #`formation`, strictly increasing —
  /// feed straight into RobustOptions::fresh.
  [[nodiscard]] std::vector<std::size_t> fresh(std::size_t formation) const;

  [[nodiscard]] std::size_t window() const noexcept { return window_; }

 private:
  struct Window {
    std::size_t from = 0;   ///< first quarantined formation (inclusive)
    std::size_t until = 0;  ///< first formation no longer quarantined
  };
  std::size_t window_ = 0;
  /// gsp -> its latest rejoin's quarantine window.
  std::map<std::size_t, Window> windows_;
};

}  // namespace svo::sim
