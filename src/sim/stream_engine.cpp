#include "sim/stream_engine.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "core/rvof.hpp"
#include "core/tvof.hpp"
#include "des/event_queue.hpp"
#include "obs/trace.hpp"
#include "trace/stream.hpp"
#include "util/stats.hpp"

namespace svo::sim {

const char* to_string(RequestOutcome outcome) noexcept {
  switch (outcome) {
    case RequestOutcome::Pending:
      return "pending";
    case RequestOutcome::Completed:
      return "completed";
    case RequestOutcome::Repaired:
      return "repaired";
    case RequestOutcome::Shed:
      return "shed";
    case RequestOutcome::TimedOut:
      return "timed_out";
  }
  return "unknown";
}

const char* to_string(StreamEventKind kind) noexcept {
  switch (kind) {
    case StreamEventKind::RequestArrival:
      return "request_arrival";
    case StreamEventKind::AdmissionShed:
      return "admission_shed";
    case StreamEventKind::AdmissionDefer:
      return "admission_defer";
    case StreamEventKind::FormationStart:
      return "formation_start";
    case StreamEventKind::FormationInfeasible:
      return "formation_infeasible";
    case StreamEventKind::FormationAborted:
      return "formation_aborted";
    case StreamEventKind::FormationCommit:
      return "formation_commit";
    case StreamEventKind::ExecutionCompleted:
      return "execution_completed";
    case StreamEventKind::RepairStarted:
      return "repair_started";
    case StreamEventKind::RepairFailed:
      return "repair_failed";
    case StreamEventKind::RequestTimedOut:
      return "request_timed_out";
    case StreamEventKind::RequestShed:
      return "request_shed";
    case StreamEventKind::GspLeft:
      return "gsp_left";
    case StreamEventKind::GspLeaveDeferred:
      return "gsp_leave_deferred";
    case StreamEventKind::GspCrashed:
      return "gsp_crashed";
    case StreamEventKind::GspRejoined:
      return "gsp_rejoined";
  }
  return "unknown";
}

void StreamOptions::validate() const {
  churn.validate();
  const std::size_t m = base.gen.params.num_gsps;
  detail::require(m > 0 && m <= game::Coalition::kMaxPlayers,
                  "StreamOptions: num_gsps must be in [1, 64]");
  detail::require(num_requests > 0, "StreamOptions: num_requests must be > 0");
  detail::require(
      std::isfinite(arrival_interval_seconds) && arrival_interval_seconds > 0.0,
      "StreamOptions: arrival_interval_seconds must be finite and > 0");
  detail::require(
      !std::isnan(formation_deadline_seconds) &&
          formation_deadline_seconds > 0.0,
      "StreamOptions: formation_deadline_seconds must be > 0 (inf = none)");
  detail::require(std::isfinite(formation_seconds) && formation_seconds >= 0.0,
                  "StreamOptions: formation_seconds must be finite and >= 0");
  detail::require(
      std::isfinite(retry_backoff_seconds) && retry_backoff_seconds >= 0.0,
      "StreamOptions: retry_backoff_seconds must be finite and >= 0");
  detail::require(std::isfinite(retry_backoff_multiplier) &&
                      retry_backoff_multiplier >= 1.0,
                  "StreamOptions: retry_backoff_multiplier must be >= 1");
  detail::require(max_attempts > 0, "StreamOptions: max_attempts must be > 0");
  detail::require(admission_floor <= m,
                  "StreamOptions: admission_floor exceeds the GSP pool size");
  detail::require(
      std::isfinite(execution_time_scale) && execution_time_scale >= 0.0,
      "StreamOptions: execution_time_scale must be finite and >= 0");
  detail::require(
      std::isfinite(churn_horizon_seconds) && churn_horizon_seconds >= 0.0,
      "StreamOptions: churn_horizon_seconds must be finite and >= 0 (0 = auto)");
  if (ingest == Ingest::SweepGrid) {
    detail::require(
        !base.task_sizes.empty(),
        "StreamOptions: SweepGrid ingest requires non-empty base.task_sizes");
  }
  detail::require(
      std::isfinite(stats_window_seconds) && stats_window_seconds >= 0.0,
      "StreamOptions: stats_window_seconds must be finite and >= 0");
  if (stats_window_seconds > 0.0) {
    detail::require(stats_window_capacity > 0,
                    "StreamOptions: stats_window_capacity must be > 0");
  } else {
    detail::require(slos.empty(),
                    "StreamOptions: slos require stats_window_seconds > 0");
  }
  for (const obs::SloObjective& o : slos) o.validate();
}

namespace {

std::unique_ptr<core::VoFormationMechanism> make_mechanism(
    MechanismKind kind, const ip::AssignmentSolver& solver,
    const core::MechanismConfig& config) {
  switch (kind) {
    case MechanismKind::Rvof:
      return std::make_unique<core::RvofMechanism>(solver, config);
    case MechanismKind::Tvof:
      break;
  }
  return std::make_unique<core::TvofMechanism>(solver, config);
}

/// Live state of one admitted request.
struct RequestState {
  std::size_t id = 0;
  ip::AssignmentInstance instance;
  trust::TrustGraph trust{0};
  /// Per-request incremental reputation memo (standard pipeline only).
  /// Within one request the trust graph is fixed, so repeated attempts
  /// exact-hit — bit-identical to recomputing, preserving the churn-off
  /// and replay guarantees; across churn mutations a small edge delta
  /// warm-starts the sparse solve instead of cold-starting it.
  trust::ReputationCache reputation_cache;
  /// The request's private mechanism stream; with churn off this is
  /// exactly the scenario's tvof/rvof stream, consumed exactly once.
  util::Xoshiro256 rng{0};
  double arrival = 0.0;
  double deadline = std::numeric_limits<double>::infinity();
  /// Bumped whenever scheduled events for this request become stale
  /// (abort, repair, terminal); closures carry the epoch they saw.
  std::size_t epoch = 0;
  std::size_t attempts = 0;
  std::size_t repair_rounds = 0;
  bool committed = false;
  bool pending_commit = false;
  /// Reserved members (commit window or execution).
  game::Coalition vo{};
  core::MechanismResult formation;
  /// Costs sunk by crashed execution attempts.
  double sunk = 0.0;
  double commit_time = 0.0;
  RequestOutcome outcome = RequestOutcome::Pending;
  double terminal_time = 0.0;
};

/// All mutable run() state; closures capture a pointer to this.
struct Engine {
  const StreamOptions& opts;
  des::Simulator sim;
  std::vector<RequestState> requests;
  std::vector<char> live;
  std::vector<char> leave_pending;
  game::Coalition busy{};
  QuarantineLedger ledger;
  std::size_t formation_counter = 0;
  std::vector<StreamLogEntry> timeline;
  std::map<std::size_t, std::size_t> quarantine_activations;
  std::size_t m = 0;

  /// Virtual-time telemetry (DESIGN.md §4j), null when off. Windows
  /// advance *lazily* from this tap — never via scheduled simulator
  /// events, which would extend the horizon and break the telemetry-off
  /// bit-identity. Pure observer: reads sim.now(), mutates nothing the
  /// events see.
  std::unique_ptr<obs::MetricRegistry> tel_registry;
  std::unique_ptr<obs::TimeSeries> tel_series;
  std::unique_ptr<obs::SloTracker> tel_slo;
  double tel_next_end = 0.0;

  Engine(const StreamOptions& o, std::size_t num_gsps)
      : opts(o),
        live(num_gsps, 1),
        leave_pending(num_gsps, 0),
        ledger(o.quarantine_formations),
        m(num_gsps) {
    if (opts.stats_window_seconds > 0.0) {
      tel_registry = std::make_unique<obs::MetricRegistry>();
      tel_series = std::make_unique<obs::TimeSeries>(
          *tel_registry, opts.stats_window_capacity);
      tel_slo = std::make_unique<obs::SloTracker>(opts.slos,
                                                  tel_registry.get());
      tel_next_end = opts.stats_window_seconds;
    }
  }

  /// Close every window that ended at or before `now` (an event at the
  /// exact boundary k*w belongs to window k, which covers [k*w,(k+1)*w)).
  void advance_telemetry(double now) {
    while (tel_next_end <= now) {
      const obs::Window& w = tel_series->advance(tel_next_end);
      tel_slo->evaluate(w);
      tel_next_end += opts.stats_window_seconds;
    }
  }

  void log(StreamEventKind kind, std::size_t request = SIZE_MAX,
           std::size_t gsp = SIZE_MAX) {
    if (tel_registry) {
      advance_telemetry(sim.now());
      tel_registry->counter(std::string("stream.") + to_string(kind)).add();
      tel_registry->gauge("stream.live")
          .set(static_cast<double>(live_count()));
      tel_registry->gauge("stream.busy")
          .set(static_cast<double>(busy.size()));
    }
    timeline.push_back({sim.now(), kind, request, gsp});
  }

  [[nodiscard]] std::size_t live_count() const {
    return static_cast<std::size_t>(
        std::count(live.begin(), live.end(), char{1}));
  }

  /// Live GSPs not reserved by any VO.
  [[nodiscard]] game::Coalition free_pool() const {
    game::Coalition pool;
    for (std::size_t g = 0; g < m; ++g) {
      if (live[g] && !busy.contains(g)) pool = pool.with(g);
    }
    return pool;
  }

  [[nodiscard]] double exec_duration(const RequestState& q) const {
    return q.instance.deadline * opts.execution_time_scale;
  }

  /// One mechanism run over `candidates`, feeding the quarantine ledger's
  /// current fresh list into the robust layer. With no rejoins recorded
  /// the config is bit-identical to opts.base.mechanism, so churn-off
  /// streaming reproduces the one-shot sweep exactly.
  core::MechanismResult run_mechanism(RequestState& q,
                                      game::Coalition candidates) {
    core::MechanismConfig config = opts.base.mechanism;
    // Thread the request's incremental cache into the standard pipeline
    // (the robust pipeline's per-round fresh list forbids memoization —
    // ReputationOptions::validate() enforces the split).
    if (!config.reputation.robust.enabled) {
      config.reputation.cache = &q.reputation_cache;
    }
    std::vector<std::size_t> fresh = ledger.fresh(formation_counter);
    if (!fresh.empty()) {
      auto& list = config.reputation.robust.fresh;
      list.insert(list.end(), fresh.begin(), fresh.end());
      std::sort(list.begin(), list.end());
      list.erase(std::unique(list.begin(), list.end()), list.end());
    }
    ++formation_counter;
    const ip::BnbAssignmentSolver solver(opts.base.solver);
    const auto mechanism = make_mechanism(opts.mechanism, solver, config);
    return mechanism->run(
        core::FormationRequest{q.instance, q.trust, q.rng, candidates});
  }

  /// Free a request's reservation; deferred graceful leaves of its
  /// members take effect now that the VO no longer needs them.
  void release_members(RequestState& q) {
    for (const std::size_t g : q.vo.members()) {
      if (leave_pending[g]) {
        live[g] = 0;
        leave_pending[g] = 0;
        log(StreamEventKind::GspLeft, SIZE_MAX, g);
      }
    }
    busy = game::Coalition(busy.bits() & ~q.vo.bits());
    q.vo = game::Coalition{};
  }

  void terminal(std::size_t r, RequestOutcome outcome, StreamEventKind kind) {
    RequestState& q = requests[r];
    q.outcome = outcome;
    q.terminal_time = sim.now();
    q.pending_commit = false;
    release_members(q);
    ++q.epoch;
    log(kind, r);
  }

  void schedule_retry(std::size_t r) {
    RequestState& q = requests[r];
    if (q.attempts >= opts.max_attempts) {
      terminal(r, RequestOutcome::TimedOut, StreamEventKind::RequestTimedOut);
      return;
    }
    const double delay =
        opts.retry_backoff_seconds *
        std::pow(opts.retry_backoff_multiplier,
                 static_cast<double>(q.attempts > 0 ? q.attempts - 1 : 0));
    if (sim.now() + delay > q.deadline) {
      terminal(r, RequestOutcome::TimedOut, StreamEventKind::RequestTimedOut);
      return;
    }
    const std::size_t epoch = q.epoch;
    sim.schedule(delay, [this, r, epoch] {
      if (requests[r].epoch == epoch) attempt(r);
    });
  }

  void attempt(std::size_t r) {
    RequestState& q = requests[r];
    if (q.outcome != RequestOutcome::Pending || q.committed) return;
    if (sim.now() > q.deadline) {
      terminal(r, RequestOutcome::TimedOut, StreamEventKind::RequestTimedOut);
      return;
    }
    if (live_count() < opts.admission_floor) {
      if (opts.defer_below_floor) {
        ++q.attempts;
        log(StreamEventKind::AdmissionDefer, r);
        schedule_retry(r);
      } else {
        log(StreamEventKind::AdmissionShed, r);
        terminal(r, RequestOutcome::Shed, StreamEventKind::RequestShed);
      }
      return;
    }
    ++q.attempts;
    const game::Coalition candidates = free_pool();
    if (candidates.empty()) {
      log(StreamEventKind::FormationInfeasible, r);
      schedule_retry(r);
      return;
    }
    log(StreamEventKind::FormationStart, r);
    core::MechanismResult result = run_mechanism(q, candidates);
    if (!result.success) {
      log(StreamEventKind::FormationInfeasible, r);
      schedule_retry(r);
      return;
    }
    // Award enters the commit window: members are reserved now, the VO
    // commits formation_seconds later unless a member crashes first.
    q.formation = std::move(result);
    q.vo = q.formation.selected;
    busy = busy.unite(q.vo);
    q.pending_commit = true;
    const std::size_t epoch = q.epoch;
    sim.schedule(opts.formation_seconds, [this, r, epoch] { commit(r, epoch); });
  }

  void commit(std::size_t r, std::size_t epoch) {
    RequestState& q = requests[r];
    if (q.epoch != epoch || q.outcome != RequestOutcome::Pending ||
        !q.pending_commit) {
      return;
    }
    q.pending_commit = false;
    q.committed = true;
    q.commit_time = sim.now();
    log(StreamEventKind::FormationCommit, r);
    if (tel_registry) {
      tel_registry->histogram("stream.formation_latency_s")
          .observe(q.commit_time - q.arrival);
    }
    const std::size_t e = q.epoch;
    sim.schedule(exec_duration(q), [this, r, e] { complete_execution(r, e); });
  }

  void complete_execution(std::size_t r, std::size_t epoch) {
    RequestState& q = requests[r];
    if (q.epoch != epoch || q.outcome != RequestOutcome::Pending) return;
    terminal(r,
             q.repair_rounds > 0 ? RequestOutcome::Repaired
                                 : RequestOutcome::Completed,
             StreamEventKind::ExecutionCompleted);
  }

  /// A committed member crashed mid-execution: sink the broken attempt's
  /// costs and re-form over the survivors plus the free live pool.
  void repair(std::size_t r) {
    RequestState& q = requests[r];
    log(StreamEventKind::RepairStarted, r);
    q.sunk += q.formation.cost;
    ++q.epoch;  // the old completion event is now stale
    release_members(q);
    ++q.repair_rounds;
    const game::Coalition candidates = free_pool();
    if (q.repair_rounds <= opts.max_repair_rounds && !candidates.empty()) {
      core::MechanismResult result = run_mechanism(q, candidates);
      if (result.success) {
        q.formation = std::move(result);
        q.vo = q.formation.selected;
        busy = busy.unite(q.vo);
        const std::size_t e = q.epoch;
        sim.schedule(exec_duration(q),
                     [this, r, e] { complete_execution(r, e); });
        return;
      }
    }
    log(StreamEventKind::RepairFailed, r);
    q.committed = false;
    schedule_retry(r);
  }

  void on_timeout(std::size_t r) {
    RequestState& q = requests[r];
    if (q.outcome != RequestOutcome::Pending || q.committed) return;
    terminal(r, RequestOutcome::TimedOut, StreamEventKind::RequestTimedOut);
  }

  void arrive(std::size_t r) {
    RequestState& q = requests[r];
    q.arrival = sim.now();
    log(StreamEventKind::RequestArrival, r);
    if (std::isfinite(opts.formation_deadline_seconds)) {
      q.deadline = sim.now() + opts.formation_deadline_seconds;
      sim.schedule(opts.formation_deadline_seconds,
                   [this, r] { on_timeout(r); });
    }
    attempt(r);
  }

  void on_leave(std::size_t g) {
    if (!live[g]) return;
    if (busy.contains(g)) {
      // Graceful: the GSP drains its current VO before departing.
      leave_pending[g] = 1;
      log(StreamEventKind::GspLeaveDeferred, SIZE_MAX, g);
    } else {
      live[g] = 0;
      log(StreamEventKind::GspLeft, SIZE_MAX, g);
    }
  }

  void on_crash(std::size_t g) {
    if (!live[g]) return;
    live[g] = 0;
    leave_pending[g] = 0;
    log(StreamEventKind::GspCrashed, SIZE_MAX, g);
    // Crash inside a commit window aborts the pending award.
    for (RequestState& q : requests) {
      if (q.outcome == RequestOutcome::Pending && q.pending_commit &&
          q.vo.contains(g)) {
        log(StreamEventKind::FormationAborted, q.id);
        q.pending_commit = false;
        release_members(q);
        ++q.epoch;
        schedule_retry(q.id);
      }
    }
    // Crash mid-execution triggers VO repair over the survivors.
    for (RequestState& q : requests) {
      if (q.outcome == RequestOutcome::Pending && q.committed &&
          q.vo.contains(g)) {
        repair(q.id);
      }
    }
  }

  void on_rejoin(std::size_t g) {
    if (live[g]) {
      // A deferred leave that never took effect: the GSP stays; it never
      // actually departed, so no quarantine.
      leave_pending[g] = 0;
      return;
    }
    live[g] = 1;
    leave_pending[g] = 0;
    // Exactly one quarantine activation per rejoin: the ledger arms the
    // window here and nowhere else (satellite regression in
    // tests/sim/churn_test.cpp).
    ledger.record_rejoin(g, formation_counter);
    ++quarantine_activations[g];
    log(StreamEventKind::GspRejoined, SIZE_MAX, g);
  }
};

}  // namespace

StreamEngine::StreamEngine(StreamOptions options)
    : options_((options.validate(), std::move(options))),
      factory_(options_.base) {}

StreamResult StreamEngine::run() const {
  const std::size_t m = options_.base.gen.params.num_gsps;
  obs::Span span("sim.stream.run", "sim");
  if (span.active()) {
    span.arg("requests", static_cast<double>(options_.num_requests));
    span.arg("mechanism",
             options_.mechanism == MechanismKind::Tvof ? "TVOF" : "RVOF");
    span.arg("churn", options_.churn.enabled() ? 1.0 : 0.0);
  }

  Engine engine(options_, m);
  engine.requests.reserve(options_.num_requests);

  // Materialize the request workloads. SweepGrid reuses the one-shot
  // sweep's exact scenarios; StreamingAtlas skims the chunked synthetic
  // stream for eligible long jobs (O(1) jobs in memory at a time).
  if (options_.ingest == StreamOptions::Ingest::SweepGrid) {
    const std::size_t num_sizes = options_.base.task_sizes.size();
    for (std::size_t i = 0; i < options_.num_requests; ++i) {
      Scenario scenario = factory_.make(
          options_.base.task_sizes[i % num_sizes], i / num_sizes);
      RequestState q;
      q.id = i;
      q.instance = std::move(scenario.instance.assignment);
      q.trust = scenario.trust;
      q.rng = util::Xoshiro256(options_.mechanism == MechanismKind::Tvof
                                   ? scenario.tvof_seed
                                   : scenario.rvof_seed);
      engine.requests.push_back(std::move(q));
    }
  } else {
    trace::AtlasJobStream stream(
        options_.base.trace,
        util::derive_seed(options_.base.seed, /*stream=*/0xA71A5));
    for (std::size_t i = 0; i < options_.num_requests; ++i) {
      const auto program =
          stream.next_program(options_.base.gen.params.min_job_runtime,
                              options_.max_stream_tasks);
      if (!program) break;  // stream exhausted: admit fewer requests
      util::Xoshiro256 gen_rng(util::derive_seed(
          options_.base.seed, 0x57BEA0ULL ^ (static_cast<std::uint64_t>(i) << 8)));
      workload::GridInstance grid =
          workload::generate_instance(*program, options_.base.gen, gen_rng);
      RequestState q;
      q.id = i;
      q.instance = std::move(grid.assignment);
      q.trust = trust::random_trust_graph(
          m, options_.base.gen.params.trust_edge_probability, gen_rng);
      q.rng = util::Xoshiro256(util::derive_seed(
          options_.base.seed,
          (options_.mechanism == MechanismKind::Tvof ? 0x7F0F'0000'0000ULL
                                                     : 0x4F0F'0000'0000ULL) ^
              (0x57BEA0ULL + i)));
      engine.requests.push_back(std::move(q));
    }
  }

  // Deterministic churn schedule over a horizon covering the arrival
  // span and the execution tail. Scheduled before the arrivals so a
  // churn event at an arrival's exact time reshapes that arrival's pool.
  StreamResult out;
  const double horizon =
      options_.churn_horizon_seconds > 0.0
          ? options_.churn_horizon_seconds
          : 2.0 * options_.arrival_interval_seconds *
                    static_cast<double>(options_.num_requests) +
                1.0;
  out.churn_schedule = build_churn_schedule(options_.churn, m, horizon);
  for (const ChurnEvent& event : out.churn_schedule) {
    engine.sim.schedule_at(event.time, [&engine, event] {
      switch (event.kind) {
        case ChurnEventKind::Leave:
          engine.on_leave(event.gsp);
          break;
        case ChurnEventKind::Crash:
          engine.on_crash(event.gsp);
          break;
        case ChurnEventKind::Rejoin:
          engine.on_rejoin(event.gsp);
          break;
      }
    });
  }
  for (std::size_t i = 0; i < engine.requests.size(); ++i) {
    engine.sim.schedule_at(
        static_cast<double>(i) * options_.arrival_interval_seconds,
        [&engine, i] { engine.arrive(i); });
  }
  engine.sim.run();

  if (engine.tel_registry) {
    // Close trailing full windows, then one final partial window up to
    // the horizon so the tail of the run is accounted. Deterministic:
    // the horizon is itself a pure function of the config.
    engine.advance_telemetry(engine.sim.now());
    const double last_closed =
        engine.tel_next_end - options_.stats_window_seconds;
    if (engine.sim.now() > last_closed) {
      const obs::Window& w = engine.tel_series->advance(engine.sim.now());
      engine.tel_slo->evaluate(w);
    }
    const auto& ring = engine.tel_series->windows();
    out.windows.assign(ring.begin(), ring.end());
    out.slo_status = engine.tel_slo->status();
  }

  // Aggregate.
  out.timeline = std::move(engine.timeline);
  out.quarantine_activations = std::move(engine.quarantine_activations);
  out.admitted = engine.requests.size();
  out.horizon = engine.sim.now();
  std::vector<double> latencies;
  for (RequestState& q : engine.requests) {
    StreamRequestResult rr;
    rr.id = q.id;
    rr.num_tasks = q.instance.num_tasks();
    rr.outcome = q.outcome;
    rr.arrival_time = q.arrival;
    rr.terminal_time = q.terminal_time;
    rr.attempts = q.attempts;
    rr.repair_rounds = q.repair_rounds;
    switch (q.outcome) {
      case RequestOutcome::Completed:
        ++out.completed;
        break;
      case RequestOutcome::Repaired:
        ++out.repaired;
        break;
      case RequestOutcome::Shed:
        ++out.shed;
        break;
      case RequestOutcome::TimedOut:
        ++out.timed_out;
        break;
      case RequestOutcome::Pending:
        ++out.lost;  // must never happen; surfaced, not hidden
        break;
    }
    if (q.outcome == RequestOutcome::Completed ||
        q.outcome == RequestOutcome::Repaired) {
      rr.formation_latency_seconds = q.commit_time - q.arrival;
      latencies.push_back(rr.formation_latency_seconds);
      rr.realized_value = q.formation.value - q.sunk;
      out.total_realized_value += rr.realized_value;
      rr.formation = std::move(q.formation);
    }
    out.requests.push_back(std::move(rr));
  }
  if (out.admitted > 0) {
    out.completion_rate =
        static_cast<double>(out.completed + out.repaired) /
        static_cast<double>(out.admitted);
    out.deadline_miss_rate = static_cast<double>(out.timed_out) /
                             static_cast<double>(out.admitted);
  }
  if (!latencies.empty()) {
    util::RunningStats stats;
    for (const double v : latencies) stats.add(v);
    out.mean_formation_latency = stats.mean();
    out.p99_formation_latency = util::percentile(latencies, 0.99);
  }
  if (span.active()) {
    auto& metrics = obs::Recorder::instance().metrics();
    metrics.counter("sim.stream.requests").add(out.admitted);
    metrics.counter("sim.stream.completed").add(out.completed);
    metrics.counter("sim.stream.repaired").add(out.repaired);
    metrics.counter("sim.stream.shed").add(out.shed);
    metrics.counter("sim.stream.timed_out").add(out.timed_out);
    metrics.counter("sim.stream.formations").add(engine.formation_counter);
    for (const double v : latencies) {
      metrics.histogram("sim.stream.formation_latency_seconds").observe(v);
    }
  }
  return out;
}

}  // namespace svo::sim
