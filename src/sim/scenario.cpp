#include "sim/scenario.hpp"

#include "trace/programs.hpp"

namespace svo::sim {

namespace {

/// Stable substream id for a (num_tasks, repetition) pair.
std::uint64_t scenario_stream(std::size_t num_tasks, std::size_t repetition) {
  return (static_cast<std::uint64_t>(num_tasks) << 20) ^
         static_cast<std::uint64_t>(repetition);
}

}  // namespace

namespace {

trace::Trace build_trace(const ExperimentConfig& cfg) {
  const std::uint64_t seed = util::derive_seed(cfg.seed, /*stream=*/0xA71A5);
  switch (cfg.trace_model) {
    case ExperimentConfig::TraceModel::LublinFeitelson:
      return trace::generate_lublin(cfg.lublin, seed);
    case ExperimentConfig::TraceModel::AtlasLike:
      break;
  }
  return trace::generate_atlas_like(cfg.trace, seed);
}

}  // namespace

ScenarioFactory::ScenarioFactory(ExperimentConfig cfg)
    : cfg_(std::move(cfg)), trace_(build_trace(cfg_)) {}

Scenario ScenarioFactory::make(std::size_t num_tasks,
                               std::size_t repetition) const {
  util::Xoshiro256 rng(util::derive_seed(
      cfg_.seed, scenario_stream(num_tasks, repetition)));

  const std::vector<trace::ProgramSpec> programs = trace::sample_programs(
      trace_.jobs, num_tasks, 1, rng, cfg_.gen.params.min_job_runtime);
  detail::require(!programs.empty(),
                  "ScenarioFactory::make: no eligible trace job of this size");

  Scenario s;
  s.instance = workload::generate_instance(programs.front(), cfg_.gen, rng);
  s.trust = trust::random_trust_graph(
      cfg_.gen.params.num_gsps, cfg_.gen.params.trust_edge_probability, rng);
  s.tvof_seed = util::derive_seed(cfg_.seed,
                                  scenario_stream(num_tasks, repetition) ^
                                      0x7F0F'0000'0000ULL);
  s.rvof_seed = util::derive_seed(cfg_.seed,
                                  scenario_stream(num_tasks, repetition) ^
                                      0x4F0F'0000'0000ULL);
  return s;
}

}  // namespace svo::sim
