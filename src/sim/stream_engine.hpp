/// \file stream_engine.hpp
/// Streaming grid economy: churn-tolerant virtual-time VO formation with
/// graceful degradation. The paper evaluates one-shot formation — one
/// program, all GSPs present, one mechanism run. This engine generalizes
/// that to the regime the introduction actually describes: programs
/// arrive continuously, several VOs are alive at once competing for the
/// same GSP pool, and providers join, leave, crash and rejoin while
/// formations and executions are in flight.
///
/// Everything happens in *virtual* time on des::Simulator, so runs are
/// bit-for-bit reproducible from the config: same seed, same event
/// timeline, wall clock never consulted. Two anchoring guarantees
/// (tests/sim/stream_engine_test.cpp):
///
///  1. Churn-off equivalence: with churn disabled, unbounded deadlines
///     and non-overlapping executions, every request's MechanismResult
///     is bit-identical (selected VO, mapping, cost, journal, RNG
///     consumption) to ExperimentRunner::run_pair on the same scenario —
///     the streaming economy is a strict superset of the one-shot sweep.
///  2. Replay determinism: the same StreamOptions produce the identical
///     StreamLogEntry timeline, event for event.
///
/// Graceful degradation under churn:
///  - crash mid-formation (commit window): the pending award is aborted,
///    reserved members are freed, and the request retries with
///    exponential backoff;
///  - crash mid-execution: the VO is repaired by re-running the
///    mechanism over the survivors plus the free live pool (costs of the
///    broken attempt are sunk, as in sim::execute_with_repair);
///  - graceful leave: a busy GSP drains its current VO before departing;
///  - admission control: requests are shed (or deferred) while the live
///    pool is below a floor;
///  - rejoin: the GSP re-enters through the PR 3 re-entry quarantine —
///    QuarantineLedger feeds RobustOptions::fresh for exactly the next
///    `quarantine_formations` formation runs (once per rejoin, never
///    re-armed by later formations).
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <vector>

#include "core/mechanism.hpp"
#include "obs/slo.hpp"
#include "obs/timeseries.hpp"
#include "sim/adversary.hpp"  // MechanismKind
#include "sim/churn.hpp"
#include "sim/scenario.hpp"

namespace svo::sim {

/// Terminal (or not-yet-terminal) state of one formation request.
enum class RequestOutcome {
  Pending,    ///< still in flight (never terminal after run())
  Completed,  ///< executed to completion with the original VO
  Repaired,   ///< executed to completion after >= 1 mid-execution repair
  Shed,       ///< rejected by admission control (pool below floor)
  TimedOut,   ///< deadline passed or retry budget exhausted
};

[[nodiscard]] const char* to_string(RequestOutcome outcome) noexcept;

/// Timeline event kinds, in the replayable event log.
enum class StreamEventKind {
  RequestArrival,
  AdmissionShed,        ///< shed: live pool below admission floor
  AdmissionDefer,       ///< deferred instead (defer_below_floor)
  FormationStart,       ///< a mechanism run begins for the request
  FormationInfeasible,  ///< mechanism found no feasible VO
  FormationAborted,     ///< pending member crashed in the commit window
  FormationCommit,      ///< VO committed; execution begins
  ExecutionCompleted,   ///< program delivered; VO dissolves
  RepairStarted,        ///< member crashed mid-execution; re-forming
  RepairFailed,         ///< no feasible VO over the survivors
  RequestTimedOut,      ///< deadline or retry budget exhausted
  RequestShed,          ///< terminal shed (admission or retry exhaustion)
  GspLeft,              ///< graceful departure took effect
  GspLeaveDeferred,     ///< departure deferred: GSP is draining its VO
  GspCrashed,
  GspRejoined,
};

[[nodiscard]] const char* to_string(StreamEventKind kind) noexcept;

/// One timeline entry. Virtual time only — replays compare these with
/// operator== (tests pin same-seed runs to identical timelines).
struct StreamLogEntry {
  double time = 0.0;
  StreamEventKind kind = StreamEventKind::RequestArrival;
  /// Request id, or SIZE_MAX for pure churn events.
  std::size_t request = SIZE_MAX;
  /// GSP id, or SIZE_MAX when not GSP-specific.
  std::size_t gsp = SIZE_MAX;

  friend bool operator==(const StreamLogEntry&,
                         const StreamLogEntry&) = default;
};

/// Configuration of one streaming run.
struct StreamOptions {
  /// Scenario source (trace, Table I, solver, mechanism config, seed).
  ExperimentConfig base;
  /// Which removal rule forms VOs.
  MechanismKind mechanism = MechanismKind::Tvof;
  /// GSP churn model; default (all-zero rates) = no churn.
  ChurnOptions churn;

  /// Where request workloads come from.
  enum class Ingest {
    /// Round-robin over base.task_sizes via ScenarioFactory: request id
    /// maps to (task_sizes[id % S], repetition id / S) — the exact
    /// scenarios of the one-shot sweep, enabling guarantee (1).
    SweepGrid,
    /// Memory-bounded chunked ingest (trace::AtlasJobStream): each
    /// request takes the next eligible long job from the synthetic
    /// stream — millions of jobs never materialize at once.
    StreamingAtlas,
  };
  Ingest ingest = Ingest::SweepGrid;

  /// Number of formation requests admitted into the run.
  std::size_t num_requests = 24;
  /// Virtual seconds between consecutive request arrivals (first at 0).
  double arrival_interval_seconds = 60.0;
  /// Per-request deadline, virtual seconds from arrival to commit;
  /// infinity = never times out.
  double formation_deadline_seconds = std::numeric_limits<double>::infinity();
  /// Virtual latency between a successful mechanism run and the VO
  /// commit — the window in which a member crash aborts the award.
  double formation_seconds = 1.0;
  /// Retry backoff: attempt k (1-based) retries after
  /// retry_backoff_seconds * multiplier^(k-1) virtual seconds.
  double retry_backoff_seconds = 30.0;
  double retry_backoff_multiplier = 2.0;
  /// Formation attempts per request (arrival + retries).
  std::size_t max_attempts = 8;
  /// Admission control: minimum live GSPs required to attempt formation.
  std::size_t admission_floor = 1;
  /// Below the floor: true = defer (retry later, consuming an attempt),
  /// false = shed immediately.
  bool defer_below_floor = false;
  /// Execution duration = instance deadline * this scale. Tiny values
  /// serialize executions between arrivals (used by guarantee (1)).
  double execution_time_scale = 1.0;
  /// Mid-execution repairs per request before it fails terminally.
  std::size_t max_repair_rounds = 3;
  /// Re-entry quarantine window, in formation runs (QuarantineLedger);
  /// only bites when base.mechanism.reputation.robust.enabled.
  std::size_t quarantine_formations = 3;
  /// StreamingAtlas: skip stream jobs wider than this many tasks
  /// (keeps per-request instances k x n bounded). 0 = no cap.
  std::size_t max_stream_tasks = 1024;
  /// Churn schedule horizon, virtual seconds; 0 = auto (twice the
  /// arrival span, so churn spans executions tailing past it).
  double churn_horizon_seconds = 0.0;

  /// Continuous telemetry (DESIGN.md §4j): > 0 closes a metrics window
  /// every this-many *virtual* seconds, advanced lazily from the event
  /// tap — no simulator events are scheduled, so the event timeline,
  /// horizon and results are bit-identical to a telemetry-off run, and
  /// same-seed replays produce identical window sequences and SLO
  /// verdicts. 0 (default) = off.
  double stats_window_seconds = 0.0;
  /// Window ring capacity (StreamResult::windows keeps the newest this
  /// many).
  std::size_t stats_window_capacity = 256;
  /// Objectives evaluated per closed window over the stream.* metrics
  /// (per-event-kind counters, stream.formation_latency_s histogram,
  /// stream.live/stream.busy gauges). Requires telemetry on.
  std::vector<obs::SloObjective> slos;

  /// Throws InvalidArgument (message "StreamOptions: ...") on invalid
  /// knobs: zero requests/interval, non-positive deadline, floor above
  /// the GSP pool size, multiplier < 1, negative scales, bad churn,
  /// a negative / non-finite stats window, a zero window capacity,
  /// SLOs with telemetry off, or an invalid SLO objective.
  void validate() const;
};

/// Per-request result.
struct StreamRequestResult {
  std::size_t id = 0;
  std::size_t num_tasks = 0;
  RequestOutcome outcome = RequestOutcome::Pending;
  double arrival_time = 0.0;
  /// Virtual time the request reached a terminal state.
  double terminal_time = 0.0;
  /// Arrival -> commit latency, virtual seconds (committed requests).
  double formation_latency_seconds = 0.0;
  /// Mechanism attempts consumed (>= 1 once an attempt ran).
  std::size_t attempts = 0;
  /// Mid-execution repairs performed.
  std::size_t repair_rounds = 0;
  /// Realized value: committed VO's v(C) minus every sunk cost of
  /// crashed attempts; 0 unless Completed/Repaired.
  double realized_value = 0.0;
  /// Last committed formation (valid when Completed/Repaired).
  core::MechanismResult formation;
};

/// Full run result + the aggregates the bench gates.
struct StreamResult {
  std::vector<StreamRequestResult> requests;
  /// Replayable virtual-time event log.
  std::vector<StreamLogEntry> timeline;
  /// The deterministic churn schedule the run executed.
  std::vector<ChurnEvent> churn_schedule;

  std::size_t admitted = 0;
  std::size_t completed = 0;  ///< outcome Completed
  std::size_t repaired = 0;   ///< outcome Repaired
  std::size_t shed = 0;
  std::size_t timed_out = 0;
  /// Admitted requests not in a terminal state after the run — the
  /// no-lost-requests invariant demands this is always 0.
  std::size_t lost = 0;

  /// (completed + repaired) / admitted; 1 when nothing was admitted.
  double completion_rate = 1.0;
  /// timed_out / admitted.
  double deadline_miss_rate = 0.0;
  double total_realized_value = 0.0;
  /// Arrival -> commit latency over committed requests, virtual seconds.
  double mean_formation_latency = 0.0;
  double p99_formation_latency = 0.0;
  /// Virtual time of the last executed event.
  double horizon = 0.0;
  /// Satellite-1 telemetry: rejoins recorded per GSP — each equals one
  /// quarantine activation, never more (exactly-once semantics).
  std::map<std::size_t, std::size_t> quarantine_activations;

  /// Closed telemetry windows (newest stats_window_capacity of them),
  /// virtual-time deltas of the stream.* metrics; empty with telemetry
  /// off. Deterministic: same-seed replays compare equal window for
  /// window (operator==).
  std::vector<obs::Window> windows;
  /// Final SLO verdicts after the last window; empty without
  /// objectives.
  std::vector<obs::SloStatus> slo_status;
};

/// The virtual-time streaming engine. Construction builds the scenario
/// source (for SweepGrid, the same trace the one-shot sweep uses);
/// run() is const and deterministic — repeated calls replay identically.
class StreamEngine {
 public:
  /// Validates `options`.
  explicit StreamEngine(StreamOptions options);

  [[nodiscard]] StreamResult run() const;

  [[nodiscard]] const StreamOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const ScenarioFactory& scenarios() const noexcept {
    return factory_;
  }

 private:
  StreamOptions options_;
  ScenarioFactory factory_;
};

}  // namespace svo::sim
