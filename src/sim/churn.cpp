#include "sim/churn.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace svo::sim {

const char* to_string(ChurnEventKind kind) noexcept {
  switch (kind) {
    case ChurnEventKind::Leave:
      return "leave";
    case ChurnEventKind::Crash:
      return "crash";
    case ChurnEventKind::Rejoin:
      return "rejoin";
  }
  return "unknown";
}

void ChurnOptions::validate() const {
  detail::require(std::isfinite(leave_rate) && leave_rate >= 0.0,
                  "ChurnOptions: leave_rate must be finite and >= 0");
  detail::require(std::isfinite(crash_rate) && crash_rate >= 0.0,
                  "ChurnOptions: crash_rate must be finite and >= 0");
  detail::require(
      !enabled() ||
          (std::isfinite(mean_absence_seconds) && mean_absence_seconds > 0.0),
      "ChurnOptions: mean_absence_seconds must be finite and > 0 when "
      "churn is enabled");
  detail::require(
      std::isfinite(rejoin_probability) && rejoin_probability >= 0.0 &&
          rejoin_probability <= 1.0,
      "ChurnOptions: rejoin_probability must be in [0, 1]");
  detail::require(max_events_per_gsp > 0,
                  "ChurnOptions: max_events_per_gsp must be > 0");
}

std::vector<ChurnEvent> build_churn_schedule(const ChurnOptions& options,
                                             std::size_t num_gsps,
                                             double horizon) {
  options.validate();
  detail::require(std::isfinite(horizon) && horizon > 0.0,
                  "build_churn_schedule: horizon must be finite and > 0");

  std::vector<ChurnEvent> schedule;
  if (!options.enabled() || num_gsps == 0) return schedule;

  const double total_rate = options.leave_rate + options.crash_rate;
  const double crash_share = options.crash_rate / total_rate;
  for (std::size_t gsp = 0; gsp < num_gsps; ++gsp) {
    // Private substream per GSP: adding or removing one GSP's churn
    // never perturbs another's schedule.
    util::Xoshiro256 rng(
        util::derive_seed(options.seed, static_cast<std::uint64_t>(gsp)));
    double t = 0.0;
    std::size_t emitted = 0;
    while (emitted < options.max_events_per_gsp) {
      t += rng.exponential(total_rate);  // next departure while live
      if (t >= horizon) break;
      const ChurnEventKind departure = rng.bernoulli(crash_share)
                                           ? ChurnEventKind::Crash
                                           : ChurnEventKind::Leave;
      schedule.push_back({t, departure, gsp});
      ++emitted;
      if (emitted >= options.max_events_per_gsp) break;
      if (!rng.bernoulli(options.rejoin_probability)) break;  // gone for good
      t += rng.exponential(1.0 / options.mean_absence_seconds);
      if (t >= horizon) break;
      schedule.push_back({t, ChurnEventKind::Rejoin, gsp});
      ++emitted;
    }
  }
  std::sort(schedule.begin(), schedule.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              if (a.time != b.time) return a.time < b.time;
              if (a.gsp != b.gsp) return a.gsp < b.gsp;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return schedule;
}

void QuarantineLedger::record_rejoin(std::size_t gsp, std::size_t formation) {
  if (window_ == 0) return;
  windows_[gsp] = {formation, formation + window_};
}

std::vector<std::size_t> QuarantineLedger::fresh(std::size_t formation) const {
  std::vector<std::size_t> out;
  for (const auto& [gsp, window] : windows_) {  // std::map: already sorted
    if (formation >= window.from && formation < window.until) {
      out.push_back(gsp);
    }
  }
  return out;
}

}  // namespace svo::sim
