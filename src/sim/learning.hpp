/// \file learning.hpp
/// Closed-loop trust learning: repeatedly (form VO -> execute -> update
/// trust) against a hidden reliability model. This operationalizes the
/// paper's motivation — selecting trusted GSPs avoids failed programs —
/// into a measurable learning curve, and is how the repository compares
/// mechanisms on *realized* (not promised) payoff.
#pragma once

#include "core/mechanism.hpp"
#include "sim/execution.hpp"
#include "workload/instance_gen.hpp"

namespace svo::sim {

/// Configuration of one closed-loop run.
struct ClosedLoopConfig {
  /// Programs executed in sequence.
  std::size_t rounds = 30;
  /// Tasks per program.
  std::size_t num_tasks = 96;
  /// Mean task runtime band (seconds); each round draws uniformly.
  double runtime_lo = 3.0 * 3600.0;
  double runtime_hi = 8.0 * 3600.0;
  /// EWMA rate for trust updates from observed delivery.
  double trust_update_rate = 0.4;
  /// Initial mutual trust among all GSPs (complete graph) — everyone
  /// starts equally credible; learning must differentiate.
  double initial_trust = 0.5;
  /// Deadline multiplier applied after Table I generation. Table I draws
  /// make the *grand coalition* barely feasible, leaving no room to
  /// exclude anyone; slack > 1 lets small VOs be feasible so formation
  /// decisions (not capacity) drive the outcome.
  double deadline_slack = 2.5;
  /// Instance generation (Table I defaults; num_gsps drives everything).
  workload::InstanceGenOptions gen;
};

/// Per-round telemetry.
struct RoundRecord {
  std::size_t round = 0;
  bool formed = false;     ///< mechanism found a feasible VO
  bool completed = false;  ///< all tasks delivered
  game::Coalition vo;
  double promised_share = 0.0;  ///< equal share of v(C) (the paper's metric)
  double realized_share = 0.0;  ///< share of realized value (ours)
  double delivery_rate = 0.0;
  /// Fraction of VO members whose hidden theta is below 0.5.
  double unreliable_member_fraction = 0.0;
};

/// Aggregate result.
struct ClosedLoopResult {
  std::vector<RoundRecord> rounds;
  double completion_rate = 0.0;      ///< completed / formed
  double mean_realized_share = 0.0;  ///< over formed rounds
  double mean_promised_share = 0.0;
};

/// Run the closed loop for one mechanism. The trust graph starts as a
/// complete graph at `initial_trust` and evolves only through observed
/// interactions. Deterministic in `seed`; pass the same seed to compare
/// mechanisms on identical program sequences and hidden reliabilities.
[[nodiscard]] ClosedLoopResult run_closed_loop(
    const core::VoFormationMechanism& mechanism,
    const ReliabilityModel& reliability, const ClosedLoopConfig& config,
    std::uint64_t seed);

}  // namespace svo::sim
