/// \file multi_program.hpp
/// Multi-program VO formation — the paper's own remark operationalized:
/// "the rest of the GSPs which are not in the final coalition can
/// participate again in another coalition formation process for
/// executing another application program" (Section II-C).
///
/// Programs arrive in sequence; each runs the mechanism over the GSPs
/// not currently committed to an earlier program. A VO stays committed
/// until its program's deadline elapses (logical time). Reports
/// admission rate, utilization and per-program outcomes — the
/// system-level view a grid operator would care about.
#pragma once

#include "core/mechanism.hpp"
#include "workload/instance_gen.hpp"

namespace svo::sim {

/// Configuration of a multi-program run.
struct MultiProgramConfig {
  /// Programs offered to the system.
  std::size_t programs = 12;
  /// Mean inter-arrival time as a fraction of mean program duration;
  /// < 1 oversubscribes the grid (admissions must be refused).
  double arrival_intensity = 0.5;
  /// Task-count band per program.
  std::size_t tasks_lo = 32;
  std::size_t tasks_hi = 96;
  /// Runtime band (seconds).
  double runtime_lo = 3.0 * 3600.0;
  double runtime_hi = 8.0 * 3600.0;
  /// Extra deadline slack (see ClosedLoopConfig::deadline_slack).
  double deadline_slack = 2.0;
  workload::InstanceGenOptions gen;
};

/// Outcome of one offered program.
struct ProgramOutcome {
  std::size_t index = 0;
  double arrival_time = 0.0;
  /// GSPs that were free when the program arrived.
  std::size_t available_gsps = 0;
  bool admitted = false;   ///< a VO formed from the free GSPs
  game::Coalition vo;
  double payoff_share = 0.0;
  double busy_until = 0.0;  ///< commitment horizon of the VO
};

/// Aggregate system metrics.
struct MultiProgramResult {
  std::vector<ProgramOutcome> outcomes;
  double admission_rate = 0.0;
  /// Mean fraction of GSPs committed at arrival instants.
  double mean_utilization = 0.0;
  double total_value = 0.0;
};

/// Run the multi-program scenario with `mechanism` (TVOF, RVOF, ...).
/// Deterministic in `seed`. The trust graph is drawn once (ER with the
/// Table I edge probability) and held fixed — this experiment isolates
/// *resource contention*, not trust learning.
[[nodiscard]] MultiProgramResult run_multi_program(
    const core::VoFormationMechanism& mechanism,
    const MultiProgramConfig& config, std::uint64_t seed);

}  // namespace svo::sim
