#include "sim/execution.hpp"

#include <algorithm>

namespace svo::sim {

ReliabilityModel::ReliabilityModel(std::vector<double> thetas)
    : thetas_(std::move(thetas)) {
  detail::require(!thetas_.empty(), "ReliabilityModel: no GSPs");
  for (const double t : thetas_) {
    detail::require(t >= 0.0 && t <= 1.0,
                    "ReliabilityModel: theta must be in [0,1]");
  }
}

ReliabilityModel ReliabilityModel::bimodal(std::size_t m,
                                           double reliable_fraction,
                                           double reliable_lo,
                                           double unreliable_hi,
                                           util::Xoshiro256& rng) {
  detail::require(m > 0, "ReliabilityModel::bimodal: m == 0");
  detail::require(reliable_fraction >= 0.0 && reliable_fraction <= 1.0,
                  "ReliabilityModel::bimodal: fraction must be in [0,1]");
  detail::require(reliable_lo >= 0.0 && reliable_lo <= 1.0 &&
                      unreliable_hi >= 0.0 && unreliable_hi <= 1.0,
                  "ReliabilityModel::bimodal: bounds must be in [0,1]");
  std::vector<double> thetas(m);
  for (double& t : thetas) {
    t = rng.bernoulli(reliable_fraction) ? rng.uniform(reliable_lo, 1.0)
                                         : rng.uniform(0.0, unreliable_hi);
  }
  return ReliabilityModel(std::move(thetas));
}

double ReliabilityModel::theta(std::size_t g) const {
  detail::require(g < thetas_.size(), "ReliabilityModel: GSP out of range");
  return thetas_[g];
}

ExecutionOutcome simulate_execution(const ip::AssignmentInstance& inst,
                                    const ip::Assignment& mapping,
                                    game::Coalition vo,
                                    const ReliabilityModel& reliability,
                                    util::Xoshiro256& rng) {
  detail::require(mapping.size() == inst.num_tasks(),
                  "simulate_execution: mapping arity mismatch");
  detail::require(reliability.size() >= inst.num_gsps(),
                  "simulate_execution: reliability model too small");

  ExecutionOutcome out;
  out.delivered.assign(reliability.size(), 0);
  out.assigned.assign(reliability.size(), 0);
  double cost = 0.0;
  for (std::size_t t = 0; t < mapping.size(); ++t) {
    const std::size_t g = mapping[t];
    detail::require(vo.contains(g),
                    "simulate_execution: mapping uses GSP outside the VO");
    ++out.assigned[g];
    cost += inst.cost(g, t);
  }
  // One delivery draw per member with work: a provider either honours
  // its commitment entirely or defaults on it (Section I's failure mode).
  std::size_t delivered_tasks = 0;
  for (const std::size_t g : vo.members()) {
    if (out.assigned[g] == 0) continue;
    if (rng.bernoulli(reliability.theta(g))) {
      out.delivered[g] = out.assigned[g];
      delivered_tasks += out.assigned[g];
    }
  }
  out.delivery_rate = mapping.empty()
                          ? 0.0
                          : static_cast<double>(delivered_tasks) /
                                static_cast<double>(mapping.size());
  out.completed = delivered_tasks == mapping.size();
  // All-or-nothing payment (Section II-A): P if complete by the deadline,
  // otherwise nothing; execution costs are sunk either way.
  out.realized_value = (out.completed ? inst.payment : 0.0) - cost;
  out.realized_share =
      vo.empty() ? 0.0 : out.realized_value / static_cast<double>(vo.size());
  return out;
}

game::Coalition failed_members(game::Coalition vo,
                               const ExecutionOutcome& outcome) {
  game::Coalition failed;
  for (const std::size_t g : vo.members()) {
    detail::require(g < outcome.assigned.size(),
                    "failed_members: VO member outside the outcome");
    if (outcome.assigned[g] > 0 && outcome.delivered[g] == 0) {
      failed = failed.with(g);
    }
  }
  return failed;
}

RepairedExecution execute_with_repair(
    const core::VoFormationMechanism& mechanism,
    const ip::AssignmentInstance& inst, const trust::TrustGraph& trust,
    const core::MechanismResult& formation,
    const ReliabilityModel& reliability, util::Xoshiro256& rng,
    const RepairConfig& cfg) {
  detail::require(formation.success,
                  "execute_with_repair: formation was not successful");

  RepairedExecution rep;
  rep.final_formation = formation;
  rep.final_outcome = simulate_execution(inst, formation.mapping,
                                         formation.selected, reliability, rng);
  rep.total_realized_value = rep.final_outcome.realized_value;
  rep.completed = rep.final_outcome.completed;

  const game::Coalition all = game::Coalition::all(inst.num_gsps());
  while (!rep.completed && rep.repair_rounds < cfg.max_repair_rounds) {
    rep.failed = rep.failed.unite(
        failed_members(rep.final_formation.selected, rep.final_outcome));
    game::Coalition survivors = all;
    for (const std::size_t g : rep.failed.members()) {
      survivors = survivors.without(g);
    }
    if (survivors.empty()) break;  // nobody left to repair with
    const core::MechanismResult retry =
        mechanism.run(core::FormationRequest{inst, trust, rng, survivors});
    if (!retry.success) break;  // no feasible VO over the survivors
    ++rep.repair_rounds;
    rep.final_formation = retry;
    rep.final_outcome = simulate_execution(inst, retry.mapping, retry.selected,
                                           reliability, rng);
    rep.total_realized_value += rep.final_outcome.realized_value;
    rep.completed = rep.final_outcome.completed;
  }
  return rep;
}

void update_trust_from_outcome(trust::TrustGraph& trust, game::Coalition vo,
                               const ExecutionOutcome& outcome,
                               double rate) {
  const std::vector<std::size_t> members = vo.members();
  for (const std::size_t observer : members) {
    for (const std::size_t observed : members) {
      if (observer == observed) continue;
      if (outcome.assigned[observed] == 0) continue;  // nothing to observe
      const double score =
          static_cast<double>(outcome.delivered[observed]) /
          static_cast<double>(outcome.assigned[observed]);
      trust.record_interaction(observer, observed, score, rate);
    }
  }
}

}  // namespace svo::sim
