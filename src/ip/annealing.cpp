#include "ip/annealing.hpp"

#include <cmath>

#include "ip/greedy.hpp"
#include "util/rng.hpp"

namespace svo::ip {

double simulated_annealing(const AssignmentInstance& inst, Assignment& a,
                           const AnnealingOptions& opts) {
  detail::require(opts.iterations > 0, "simulated_annealing: no iterations");
  detail::require(opts.initial_temperature_fraction > 0.0 &&
                      opts.final_temperature_fraction > 0.0 &&
                      opts.final_temperature_fraction <=
                          opts.initial_temperature_fraction,
                  "simulated_annealing: bad temperature schedule");
  detail::require(opts.swap_probability >= 0.0 && opts.swap_probability <= 1.0,
                  "simulated_annealing: bad swap probability");
  {
    AssignmentInstance unbounded = inst;
    unbounded.payment = std::numeric_limits<double>::infinity();
    detail::require(check_feasible(unbounded, a).empty(),
                    "simulated_annealing: entry violates (11)-(13)");
  }
  const std::size_t k = inst.num_gsps();
  const std::size_t n = inst.num_tasks();
  if (k < 2 || n < 2) return assignment_cost(inst, a);

  util::Xoshiro256 rng(opts.seed);
  std::vector<double> load(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  double cost = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    load[a[t]] += inst.time(a[t], t);
    ++count[a[t]];
    cost += inst.cost(a[t], t);
  }
  Assignment best = a;
  double best_cost = cost;

  const double t0 = opts.initial_temperature_fraction * cost;
  const double t1 = opts.final_temperature_fraction * cost;
  const double decay =
      std::pow(t1 / t0, 1.0 / static_cast<double>(opts.iterations));
  double temperature = t0;

  const auto accept = [&](double delta) {
    if (delta <= 0.0) return true;
    if (temperature <= 0.0) return false;
    return rng.uniform() < std::exp(-delta / temperature);
  };

  for (std::size_t it = 0; it < opts.iterations; ++it) {
    temperature *= decay;
    if (rng.bernoulli(opts.swap_probability)) {
      // Swap the executors of two tasks.
      const std::size_t t = rng.index(n);
      const std::size_t u = rng.index(n);
      const std::size_t gt = a[t];
      const std::size_t gu = a[u];
      if (t == u || gt == gu) continue;
      const double new_load_gt = load[gt] - inst.time(gt, t) + inst.time(gt, u);
      const double new_load_gu = load[gu] - inst.time(gu, u) + inst.time(gu, t);
      if (new_load_gt > inst.deadline || new_load_gu > inst.deadline) continue;
      const double delta = inst.cost(gu, t) + inst.cost(gt, u) -
                           inst.cost(gt, t) - inst.cost(gu, u);
      if (!accept(delta)) continue;
      load[gt] = new_load_gt;
      load[gu] = new_load_gu;
      std::swap(a[t], a[u]);
      cost += delta;
    } else {
      // Relocate a task to a random other GSP.
      const std::size_t t = rng.index(n);
      const std::size_t from = a[t];
      const std::size_t to = rng.index(k);
      if (to == from) continue;
      if (inst.require_all_gsps_used && count[from] <= 1) continue;
      if (load[to] + inst.time(to, t) > inst.deadline) continue;
      const double delta = inst.cost(to, t) - inst.cost(from, t);
      if (!accept(delta)) continue;
      load[from] -= inst.time(from, t);
      --count[from];
      load[to] += inst.time(to, t);
      ++count[to];
      a[t] = to;
      cost += delta;
    }
    if (cost < best_cost - 1e-12) {
      best_cost = cost;
      best = a;
    }
  }
  a = std::move(best);
  return best_cost;
}

AssignmentSolution AnnealingAssignmentSolver::solve(
    const AssignmentInstance& inst) const {
  AssignmentSolution sol;
  Assignment a = greedy_construct(inst, GreedyOptions::Order::RegretDescending);
  if (a.empty()) {
    a = greedy_construct(inst, GreedyOptions::Order::TimeDescending);
  }
  if (a.empty()) {
    sol.stats.status = AssignStatus::Unknown;
    return sol;
  }
  (void)simulated_annealing(inst, a, opts_);
  const double cost = local_search(inst, a, {});
  if (cost > inst.payment + 1e-9) {
    sol.stats.status = AssignStatus::Unknown;
    return sol;
  }
  sol.stats.status = AssignStatus::Feasible;
  sol.assignment = std::move(a);
  sol.cost = cost;
  return sol;
}

}  // namespace svo::ip
