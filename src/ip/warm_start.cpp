#include "ip/warm_start.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace svo::ip {

CostOrderCache::CostOrderCache(const AssignmentInstance& parent)
    : k_(parent.num_gsps()), n_(parent.num_tasks()) {
  order_.assign(n_ * k_, 0);
  for (std::size_t t = 0; t < n_; ++t) {
    auto* row = order_.data() + t * k_;
    std::iota(row, row + k_, std::size_t{0});
    std::stable_sort(row, row + k_, [&](std::size_t a, std::size_t b) {
      return parent.cost(a, t) < parent.cost(b, t);
    });
  }
}

namespace {

/// Cheapest GSP that can still take task `t` under the deadline;
/// SIZE_MAX when none fits.
std::size_t cheapest_feasible(const AssignmentInstance& inst, std::size_t t,
                              const std::vector<double>& load) {
  std::size_t best_g = SIZE_MAX;
  double best_c = std::numeric_limits<double>::infinity();
  for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
    if (load[g] + inst.time(g, t) > inst.deadline) continue;
    const double c = inst.cost(g, t);
    if (c < best_c) {
      best_c = c;
      best_g = g;
    }
  }
  return best_g;
}

}  // namespace

RepairResult repair_for_removal(const AssignmentInstance& inst,
                                const std::vector<std::size_t>& rows,
                                const Assignment& parent_assignment,
                                std::size_t removed_parent_row,
                                std::size_t polish_passes) {
  RepairResult out;
  const std::size_t k = inst.num_gsps();
  const std::size_t n = inst.num_tasks();
  if (rows.size() != k || parent_assignment.size() != n) return out;

  // Inverse row map: parent row -> child row.
  std::size_t max_parent = removed_parent_row;
  for (const std::size_t p : rows) max_parent = std::max(max_parent, p);
  std::vector<std::size_t> child_of(max_parent + 1, SIZE_MAX);
  for (std::size_t r = 0; r < k; ++r) child_of[rows[r]] = r;

  Assignment a(n, SIZE_MAX);
  std::vector<double> load(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  std::vector<std::size_t> moved;
  for (std::size_t t = 0; t < n; ++t) {
    const std::size_t p = parent_assignment[t];
    if (p == removed_parent_row) {
      moved.push_back(t);
      continue;
    }
    if (p > max_parent || child_of[p] == SIZE_MAX) return out;  // bad hint
    const std::size_t r = child_of[p];
    a[t] = r;
    load[r] += inst.time(r, t);
    ++count[r];
    out.cost += inst.cost(r, t);
  }

  // Greedy reinsertion of the orphaned tasks (cheapest feasible GSP).
  for (const std::size_t t : moved) {
    const std::size_t g = cheapest_feasible(inst, t, load);
    if (g == SIZE_MAX) {
      out.cost = 0.0;
      return out;  // no surviving GSP can absorb this task
    }
    a[t] = g;
    load[g] += inst.time(g, t);
    ++count[g];
    out.cost += inst.cost(g, t);
    ++out.moves;
  }

  // Relocation polish restricted to the moved tasks: the surviving part
  // of the parent mapping was already solver-polished, so only the
  // fresh insertions can be locally suboptimal.
  for (std::size_t pass = 0; pass < polish_passes; ++pass) {
    bool improved = false;
    for (const std::size_t t : moved) {
      const std::size_t from = a[t];
      if (inst.require_all_gsps_used && count[from] <= 1) continue;
      const double c_from = inst.cost(from, t);
      std::size_t best_g = from;
      double best_c = c_from;
      for (std::size_t g = 0; g < k; ++g) {
        if (g == from) continue;
        const double c_g = inst.cost(g, t);
        if (c_g >= best_c) continue;
        if (load[g] + inst.time(g, t) > inst.deadline) continue;
        best_g = g;
        best_c = c_g;
      }
      if (best_g != from) {
        load[from] -= inst.time(from, t);
        --count[from];
        load[best_g] += inst.time(best_g, t);
        ++count[best_g];
        out.cost += best_c - c_from;
        a[t] = best_g;
        ++out.moves;
        improved = true;
      }
    }
    if (!improved) break;
  }

  if (inst.require_all_gsps_used) {
    for (std::size_t g = 0; g < k; ++g) {
      if (count[g] == 0) {
        // A surviving GSP lost coverage (possible only when the parent
        // mapping never used it, i.e. (13) was off upstream): bail out
        // rather than hand the solver an infeasible incumbent.
        out.cost = 0.0;
        out.moves = 0;
        return out;
      }
    }
  }
  out.ok = true;
  out.assignment = std::move(a);
  // Canonical cost: recompute in task order so warm incumbents carry
  // the exact double the solvers would report for this assignment.
  out.cost = assignment_cost(inst, out.assignment);
  return out;
}

}  // namespace svo::ip
