/// \file warm_start.hpp
/// Incremental solve support for the shrinking-coalition loop of
/// Algorithm 1. Consecutive mechanism iterations solve assignment
/// instances that differ by exactly one removed GSP row, so a solve can
/// reuse two artifacts of its predecessor:
///
///  1. an *incumbent*: the previous optimal/incumbent mapping, repaired
///     by reassigning only the tasks that lived on the removed GSP
///     (greedy min-cost insertion + a relocation polish restricted to
///     the moved tasks);
///  2. *combinatorial bounds*: the per-task cost-sorted GSP orders and
///     per-task minimum costs. Removing a row of the parent instance
///     preserves the relative order of the surviving rows, so the
///     restricted orders are obtained by filtering — never re-sorting.
///
/// Both are hints: a warm incumbent only tightens branch-and-bound
/// pruning, and the filtered orders are bit-identical to the ones a
/// cold solve would compute (stable sorts + order-preserving row
/// restriction), so a warm solve that runs to proof returns the same
/// status and cost as the cold solve. DESIGN.md "Incremental solve
/// across iterations" carries the argument.
#pragma once

#include <memory>

#include "ip/assignment.hpp"

namespace svo::ip {

/// Per-task GSP cost orders of a *parent* instance, computed once and
/// shared (via shared_ptr) by every descendant solve. Row indices are
/// parent rows.
class CostOrderCache {
 public:
  /// Precompute the stable cost-ascending GSP order of every task.
  explicit CostOrderCache(const AssignmentInstance& parent);

  [[nodiscard]] std::size_t num_gsps() const noexcept { return k_; }
  [[nodiscard]] std::size_t num_tasks() const noexcept { return n_; }

  /// Parent rows of task `t`, cost-ascending (stable). Length k.
  [[nodiscard]] const std::size_t* order(std::size_t t) const noexcept {
    return order_.data() + t * k_;
  }

 private:
  std::size_t k_ = 0;
  std::size_t n_ = 0;
  std::vector<std::size_t> order_;  // n x k, row-major per task
};

/// Warm-start hints for one solve. Everything is optional: an empty
/// incumbent means "no incumbent hint", a null cost_order means
/// "recompute the bounds".
struct WarmStart {
  /// Candidate incumbent: task -> row *of the instance being solved*.
  /// Must satisfy constraints (11)-(13) when non-empty; the payment cap
  /// (10) is checked by the receiving solver.
  Assignment incumbent;
  /// Total cost of `incumbent` (assignment_cost); meaningful iff the
  /// incumbent is non-empty.
  double incumbent_cost = 0.0;
  /// Tasks the repair step reassigned to build the incumbent
  /// (telemetry; forwarded into SolveStats::repair_moves).
  std::size_t repair_moves = 0;
  /// Cost orders of the parent instance this solve's instance was
  /// restricted from (see CostOrderCache).
  std::shared_ptr<const CostOrderCache> cost_order;
  /// rows[r] = parent row of row r of the instance being solved.
  /// Required (and only used) when cost_order is set.
  std::vector<std::size_t> rows;

  [[nodiscard]] bool has_incumbent() const noexcept {
    return !incumbent.empty();
  }
  [[nodiscard]] bool has_bounds() const noexcept {
    return cost_order != nullptr;
  }
};

/// Outcome of repair_for_removal().
struct RepairResult {
  /// True when every task found a feasible executor; false leaves
  /// `assignment` empty.
  bool ok = false;
  /// Repaired mapping: task -> row of `inst` (the restricted instance).
  Assignment assignment;
  /// assignment_cost of the repaired mapping (may exceed the payment
  /// cap — the receiving solver filters).
  double cost = 0.0;
  /// Tasks reassigned: the removed GSP's tasks plus every improving
  /// relocation the polish applied.
  std::size_t moves = 0;
};

/// Repair the parent iteration's mapping after one GSP was removed.
///
/// `inst` is the restricted (child) instance; `rows[r]` is the parent
/// row of child row r; `parent_assignment` maps each task to a parent
/// row; `removed_parent_row` is the row that left. Tasks on surviving
/// rows keep their executor; tasks on the removed row are reinserted
/// greedily (cheapest feasible surviving GSP under the deadline), then
/// a relocation polish restricted to the moved tasks runs until no
/// moved task improves (at most `polish_passes` passes). The result
/// satisfies (11)-(13) by construction whenever ok is true.
[[nodiscard]] RepairResult repair_for_removal(
    const AssignmentInstance& inst, const std::vector<std::size_t>& rows,
    const Assignment& parent_assignment, std::size_t removed_parent_row,
    std::size_t polish_passes = 8);

}  // namespace svo::ip
