#include "ip/assignment.hpp"

#include <cmath>
#include <sstream>

#include "ip/warm_start.hpp"

namespace svo::ip {

AssignmentSolution AssignmentSolver::solve(const AssignmentInstance& inst,
                                           const WarmStart& /*warm*/) const {
  return solve(inst);
}

const char* to_string(AssignStatus s) noexcept {
  switch (s) {
    case AssignStatus::Optimal: return "Optimal";
    case AssignStatus::Feasible: return "Feasible";
    case AssignStatus::Infeasible: return "Infeasible";
    case AssignStatus::Unknown: return "Unknown";
  }
  return "Invalid";
}

void AssignmentInstance::validate() const {
  detail::require(cost.rows() == time.rows() && cost.cols() == time.cols(),
                  "AssignmentInstance: cost/time shape mismatch");
  detail::require(num_gsps() > 0 && num_tasks() > 0,
                  "AssignmentInstance: empty instance");
  detail::require(deadline > 0.0, "AssignmentInstance: deadline must be > 0");
  detail::require(payment >= 0.0, "AssignmentInstance: payment must be >= 0");
  for (std::size_t g = 0; g < num_gsps(); ++g) {
    for (std::size_t t = 0; t < num_tasks(); ++t) {
      detail::require(cost(g, t) >= 0.0, "AssignmentInstance: negative cost");
      detail::require(time(g, t) > 0.0,
                      "AssignmentInstance: non-positive execution time");
    }
  }
}

AssignmentInstance AssignmentInstance::restrict_to(
    const std::vector<bool>& keep,
    std::vector<std::size_t>* original_gsps) const {
  if (keep.size() != num_gsps()) {
    throw DimensionMismatch("AssignmentInstance::restrict_to: bad keep size");
  }
  std::vector<std::size_t> rows;
  for (std::size_t g = 0; g < num_gsps(); ++g) {
    if (keep[g]) rows.push_back(g);
  }
  AssignmentInstance sub;
  sub.cost = linalg::Matrix(rows.size(), num_tasks());
  sub.time = linalg::Matrix(rows.size(), num_tasks());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    for (std::size_t t = 0; t < num_tasks(); ++t) {
      sub.cost(r, t) = cost(rows[r], t);
      sub.time(r, t) = time(rows[r], t);
    }
  }
  sub.deadline = deadline;
  sub.payment = payment;
  sub.require_all_gsps_used = require_all_gsps_used;
  if (original_gsps != nullptr) *original_gsps = std::move(rows);
  return sub;
}

double assignment_cost(const AssignmentInstance& inst, const Assignment& a) {
  if (a.size() != inst.num_tasks()) {
    throw DimensionMismatch("assignment_cost: assignment arity != num_tasks");
  }
  double acc = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    detail::require(a[t] < inst.num_gsps(),
                    "assignment_cost: GSP index out of range");
    acc += inst.cost(a[t], t);
  }
  return acc;
}

std::string check_feasible(const AssignmentInstance& inst, const Assignment& a,
                           double tol) {
  if (a.size() != inst.num_tasks()) {
    return "arity: assignment size != number of tasks";  // violates (12)
  }
  const std::size_t k = inst.num_gsps();
  std::vector<double> load(k, 0.0);
  std::vector<std::size_t> tasks_per_gsp(k, 0);
  double total_cost = 0.0;
  for (std::size_t t = 0; t < a.size(); ++t) {
    if (a[t] >= k) return "range: GSP index out of range";
    load[a[t]] += inst.time(a[t], t);
    ++tasks_per_gsp[a[t]];
    total_cost += inst.cost(a[t], t);
  }
  for (std::size_t g = 0; g < k; ++g) {
    if (load[g] > inst.deadline + tol) {
      std::ostringstream os;
      os << "deadline (11): GSP " << g << " load " << load[g] << " > d="
         << inst.deadline;
      return os.str();
    }
  }
  if (inst.require_all_gsps_used) {
    for (std::size_t g = 0; g < k; ++g) {
      if (tasks_per_gsp[g] == 0) {
        std::ostringstream os;
        os << "coverage (13): GSP " << g << " has no task";
        return os.str();
      }
    }
  }
  if (total_cost > inst.payment + tol) {
    std::ostringstream os;
    os << "payment (10): total cost " << total_cost << " > P="
       << inst.payment;
    return os.str();
  }
  return {};
}

}  // namespace svo::ip
