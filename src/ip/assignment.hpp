/// \file assignment.hpp
/// The paper's task assignment problem, IP (9)-(14):
///
///   minimize   sum_{T,G} sigma(T,G) c(T,G)                          (9)
///   subject to sum_{T,G} sigma(T,G) c(T,G) <= P        (payment)   (10)
///              sum_T sigma(T,G) t(T,G) <= d  for all G (deadline)  (11)
///              sum_G sigma(T,G) = 1          for all T             (12)
///              sum_T sigma(T,G) >= 1         for all G             (13)
///              sigma binary                                        (14)
///
/// Instances index GSPs as rows (g in [0, k)) and tasks as columns
/// (t in [0, n)). Several solvers implement AssignmentSolver; all accept
/// an arbitrary GSP subset (a coalition) via the instance construction
/// helpers, so the mechanism never copies matrices per coalition.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "linalg/matrix.hpp"

namespace svo::ip {

/// One task-assignment instance over k GSPs and n tasks.
struct AssignmentInstance {
  /// c(g, t): cost GSP g incurs executing task t. k x n.
  linalg::Matrix cost;
  /// t(g, t): seconds GSP g needs for task t. k x n.
  linalg::Matrix time;
  /// Deadline d: per-GSP budget on summed execution time (constraint 11).
  double deadline = 0.0;
  /// Payment P: cap on total execution cost (constraint 10).
  double payment = 0.0;
  /// Enforce constraint (13): every GSP receives at least one task.
  bool require_all_gsps_used = true;

  [[nodiscard]] std::size_t num_gsps() const noexcept { return cost.rows(); }
  [[nodiscard]] std::size_t num_tasks() const noexcept { return cost.cols(); }

  /// Validate shape/value invariants; throws InvalidArgument on violation.
  void validate() const;

  /// Restriction of this instance to the GSPs with keep[g] == true
  /// (coalition view). `original_gsps`, when non-null, receives the
  /// mapping restricted-row -> original-row.
  [[nodiscard]] AssignmentInstance restrict_to(
      const std::vector<bool>& keep,
      std::vector<std::size_t>* original_gsps = nullptr) const;
};

/// Task -> GSP mapping: assignment[t] = row index of the GSP executing t.
using Assignment = std::vector<std::size_t>;

/// Outcome classification of a solve.
enum class AssignStatus {
  Optimal,     ///< Incumbent proven optimal.
  Feasible,    ///< Incumbent found; optimality not proven (budget hit).
  Infeasible,  ///< Proven: no assignment satisfies (10)-(13).
  Unknown,     ///< Budget exhausted with neither incumbent nor proof.
};

/// Human-readable status name.
[[nodiscard]] const char* to_string(AssignStatus s) noexcept;

/// Per-solve telemetry shared by every consumer of a solve outcome:
/// AssignmentSolution, game::CoalitionEvaluation, core::IterationRecord
/// and (aggregated) core::MechanismResult all embed this one struct
/// instead of carrying their own loose status/node fields.
struct SolveStats {
  AssignStatus status = AssignStatus::Unknown;
  /// Search-effort accounting (solver-specific units; B&B nodes).
  std::size_t nodes = 0;
  /// True when a warm-start incumbent was accepted into the search.
  bool warm_start_used = false;
  /// Cost of the accepted warm-start incumbent (0 when none was used).
  double incumbent_reused_cost = 0.0;
  /// Tasks reassigned while repairing the previous mapping into the
  /// warm-start incumbent (0 for cold solves).
  std::size_t repair_moves = 0;

  /// Accumulate another solve into this record (mechanism totals):
  /// nodes/repair_moves/incumbent costs add up, warm_start_used ORs,
  /// and status takes the most recent solve's status.
  void accumulate(const SolveStats& other) noexcept {
    status = other.status;
    nodes += other.nodes;
    warm_start_used = warm_start_used || other.warm_start_used;
    incumbent_reused_cost += other.incumbent_reused_cost;
    repair_moves += other.repair_moves;
  }
};

/// Result of a solve.
struct AssignmentSolution {
  /// Status plus search telemetry (see SolveStats).
  SolveStats stats;
  /// Valid iff stats.status is Optimal or Feasible.
  Assignment assignment;
  /// Total cost of `assignment` (constraint-(9) objective).
  double cost = 0.0;
  /// Lower bound proved on the optimum (valid even without incumbent).
  double lower_bound = 0.0;

  [[nodiscard]] bool has_assignment() const noexcept {
    return stats.status == AssignStatus::Optimal ||
           stats.status == AssignStatus::Feasible;
  }
  [[nodiscard]] bool proven_optimal() const noexcept {
    return stats.status == AssignStatus::Optimal;
  }
};

/// Total cost of `a` on `inst`. Throws DimensionMismatch on bad arity.
[[nodiscard]] double assignment_cost(const AssignmentInstance& inst,
                                     const Assignment& a);

/// Check every IP constraint (10)-(13) for `a`; returns an empty string
/// when feasible, else a description of the first violated constraint.
[[nodiscard]] std::string check_feasible(const AssignmentInstance& inst,
                                         const Assignment& a,
                                         double tol = 1e-9);

struct WarmStart;  // ip/warm_start.hpp

/// Abstract assignment solver (strategy interface for the mechanisms).
class AssignmentSolver {
 public:
  virtual ~AssignmentSolver() = default;
  /// Solve `inst`; never throws for infeasibility (reported via status).
  [[nodiscard]] virtual AssignmentSolution solve(
      const AssignmentInstance& inst) const = 0;
  /// Warm-started solve. `warm` carries hints only — an incumbent
  /// candidate and reusable combinatorial bounds — so honouring it may
  /// tighten pruning but never change status or cost relative to the
  /// cold solve (when the search runs to proof). The default ignores
  /// the hints and performs a cold solve, which keeps every heuristic
  /// solver correct without modification.
  [[nodiscard]] virtual AssignmentSolution solve(const AssignmentInstance& inst,
                                                const WarmStart& warm) const;
  /// Identifying name for logs and benchmark tables.
  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace svo::ip
