/// \file local_search.hpp
/// Feasibility-preserving local search used to polish incumbents: single
/// task relocations plus (sampled) pairwise swaps. Shared by the greedy
/// solver and by the B&B's incumbent seeding.
#pragma once

#include <cstdint>

#include "ip/assignment.hpp"

namespace svo::ip {

/// Options for local_search().
struct LocalSearchOptions {
  /// Max full relocation passes (a pass visits every task once).
  std::size_t max_move_passes = 20;
  /// Max swap passes.
  std::size_t max_swap_passes = 2;
  /// Random swap partners examined per task per pass; 0 = exhaustive
  /// O(n^2) swaps (use only for small instances / tests).
  std::size_t swap_sample_per_task = 8;
  /// Seed for the swap sampling RNG (results are deterministic in it).
  std::uint64_t seed = 0x5e11c0de;
};

/// Improve `a` in place without ever violating constraints (11)-(13);
/// constraint (10) is an objective cap, handled by the caller. Requires
/// `a` to satisfy (11)-(13) on entry (checked). Returns the final cost.
double local_search(const AssignmentInstance& inst, Assignment& a,
                    const LocalSearchOptions& opts = {});

}  // namespace svo::ip
