/// \file lp_bnb.hpp
/// Generic 0/1 branch-and-bound over LP relaxations (svo::lp simplex),
/// plus the explicit IP formulation of the paper's task assignment model.
///
/// This is the "textbook CPLEX" path: exact, with LP lower bounds and
/// most-fractional branching. It scales only to small models, so the
/// mechanisms use BnbAssignmentSolver; this solver exists to (a) express
/// eqs. (9)-(14) literally, and (b) cross-validate the specialized solver
/// in tests and the solver micro-benchmark.
#pragma once

#include "ip/assignment.hpp"
#include "lp/simplex.hpp"

namespace svo::ip {

/// Status of a generic binary-IP solve.
enum class IpStatus {
  Optimal,    ///< Proven optimal integral solution.
  Infeasible, ///< No integral feasible point exists.
  NodeLimit,  ///< Budget hit before a proof (x holds best incumbent if any).
};

/// Result of solve_binary_ip().
struct IpResult {
  IpStatus status = IpStatus::NodeLimit;
  /// Best integral solution found (empty if none).
  std::vector<double> x;
  double objective = 0.0;
  std::size_t nodes = 0;
};

/// Options for solve_binary_ip().
struct LpBnbOptions {
  std::size_t max_nodes = 100'000;
  /// |x - round(x)| below this counts as integral.
  double integrality_tolerance = 1e-6;
  lp::SimplexOptions simplex;
};

/// Minimize `problem` with the listed variables restricted to {0, 1}
/// (their upper bounds are forced to 1). Remaining variables stay
/// continuous. Depth-first B&B, most-fractional branching.
[[nodiscard]] IpResult solve_binary_ip(const lp::Problem& problem,
                                       const std::vector<std::size_t>& binary_vars,
                                       const LpBnbOptions& opts = {});

/// Build the paper's IP (9)-(14) for `inst` as an explicit lp::Problem.
/// Variable layout: sigma(G_g, T_t) at index g * num_tasks + t.
[[nodiscard]] lp::Problem build_assignment_ip(const AssignmentInstance& inst);

/// AssignmentSolver facade over solve_binary_ip(). Exact on small
/// instances; returns Feasible/Unknown when the node budget is hit.
class LpBnbAssignmentSolver final : public AssignmentSolver {
 public:
  explicit LpBnbAssignmentSolver(LpBnbOptions opts = {}) : opts_(opts) {}

  using AssignmentSolver::solve;
  [[nodiscard]] AssignmentSolution solve(
      const AssignmentInstance& inst) const override;
  [[nodiscard]] std::string name() const override { return "lp-bnb"; }

 private:
  LpBnbOptions opts_;
};

}  // namespace svo::ip
