#include "ip/lp_bnb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svo::ip {

namespace {

constexpr double kEps = 1e-9;

/// One DFS node: the variables fixed so far (var index, value).
struct Node {
  std::vector<std::pair<std::size_t, double>> fixes;
};

/// Apply fixes to a copy of the base problem as equality rows.
lp::Problem with_fixes(const lp::Problem& base, const Node& node) {
  lp::Problem p = base;
  for (const auto& [var, value] : node.fixes) {
    std::vector<double> row(p.num_vars(), 0.0);
    row[var] = 1.0;
    p.add_constraint(std::move(row), lp::Sense::Equal, value);
  }
  return p;
}

}  // namespace

IpResult solve_binary_ip(const lp::Problem& problem,
                         const std::vector<std::size_t>& binary_vars,
                         const LpBnbOptions& opts) {
  lp::Problem base = problem;
  for (const std::size_t v : binary_vars) base.set_upper_bound(v, 1.0);

  IpResult result;
  std::vector<double> incumbent;
  double incumbent_obj = std::numeric_limits<double>::infinity();

  std::vector<Node> stack;
  stack.push_back(Node{});
  while (!stack.empty()) {
    if (result.nodes >= opts.max_nodes) {
      result.status = IpStatus::NodeLimit;
      result.x = std::move(incumbent);
      result.objective = incumbent_obj;
      return result;
    }
    ++result.nodes;
    const Node node = std::move(stack.back());
    stack.pop_back();

    const lp::Problem relax = with_fixes(base, node);
    const lp::Solution sol = lp::solve(relax, opts.simplex);
    if (sol.status == lp::SolveStatus::Infeasible) continue;
    if (sol.status != lp::SolveStatus::Optimal) {
      // Unbounded relaxations cannot occur for bounded binaries with a
      // finite objective; iteration limits are treated as budget
      // exhaustion to stay safe.
      result.status = IpStatus::NodeLimit;
      result.x = std::move(incumbent);
      result.objective = incumbent_obj;
      return result;
    }
    if (sol.objective >= incumbent_obj - kEps) continue;  // bound prune

    // Most-fractional binary variable.
    std::size_t branch_var = SIZE_MAX;
    double worst_frac = opts.integrality_tolerance;
    for (const std::size_t v : binary_vars) {
      const double frac = std::abs(sol.x[v] - std::round(sol.x[v]));
      if (frac > worst_frac) {
        worst_frac = frac;
        branch_var = v;
      }
    }
    if (branch_var == SIZE_MAX) {
      // Integral: new incumbent.
      incumbent = sol.x;
      for (const std::size_t v : binary_vars) {
        incumbent[v] = std::round(incumbent[v]);
      }
      incumbent_obj = sol.objective;
      continue;
    }
    // Depth-first: push the "away" branch first so the branch matching
    // the LP value is explored next (better incumbents earlier).
    const double toward = std::round(sol.x[branch_var]) >= 0.5 ? 1.0 : 0.0;
    Node away = node;
    away.fixes.emplace_back(branch_var, 1.0 - toward);
    stack.push_back(std::move(away));
    Node next = node;
    next.fixes.emplace_back(branch_var, toward);
    stack.push_back(std::move(next));
  }

  if (incumbent.empty()) {
    result.status = IpStatus::Infeasible;
  } else {
    result.status = IpStatus::Optimal;
    result.x = std::move(incumbent);
    result.objective = incumbent_obj;
  }
  return result;
}

lp::Problem build_assignment_ip(const AssignmentInstance& inst) {
  inst.validate();
  const std::size_t k = inst.num_gsps();
  const std::size_t n = inst.num_tasks();
  lp::Problem p(k * n);
  const auto var = [n](std::size_t g, std::size_t t) { return g * n + t; };

  // Objective (9) and payment row (10) share coefficients.
  std::vector<double> cost_row(k * n, 0.0);
  for (std::size_t g = 0; g < k; ++g) {
    for (std::size_t t = 0; t < n; ++t) cost_row[var(g, t)] = inst.cost(g, t);
  }
  p.set_objective(cost_row);
  p.add_constraint(cost_row, lp::Sense::LessEqual, inst.payment);  // (10)

  for (std::size_t g = 0; g < k; ++g) {  // (11)
    std::vector<double> row(k * n, 0.0);
    for (std::size_t t = 0; t < n; ++t) row[var(g, t)] = inst.time(g, t);
    p.add_constraint(std::move(row), lp::Sense::LessEqual, inst.deadline);
  }
  for (std::size_t t = 0; t < n; ++t) {  // (12)
    std::vector<double> row(k * n, 0.0);
    for (std::size_t g = 0; g < k; ++g) row[var(g, t)] = 1.0;
    p.add_constraint(std::move(row), lp::Sense::Equal, 1.0);
  }
  if (inst.require_all_gsps_used) {
    for (std::size_t g = 0; g < k; ++g) {  // (13)
      std::vector<double> row(k * n, 0.0);
      for (std::size_t t = 0; t < n; ++t) row[var(g, t)] = 1.0;
      p.add_constraint(std::move(row), lp::Sense::GreaterEqual, 1.0);
    }
  }
  for (std::size_t v = 0; v < k * n; ++v) p.set_upper_bound(v, 1.0);  // (14) relax
  return p;
}

AssignmentSolution LpBnbAssignmentSolver::solve(
    const AssignmentInstance& inst) const {
  const lp::Problem ip = build_assignment_ip(inst);
  std::vector<std::size_t> binaries(ip.num_vars());
  for (std::size_t v = 0; v < binaries.size(); ++v) binaries[v] = v;
  const IpResult res = solve_binary_ip(ip, binaries, opts_);

  AssignmentSolution sol;
  sol.stats.nodes = res.nodes;
  switch (res.status) {
    case IpStatus::Infeasible:
      sol.stats.status = AssignStatus::Infeasible;
      return sol;
    case IpStatus::NodeLimit:
      if (res.x.empty()) {
        sol.stats.status = AssignStatus::Unknown;
        return sol;
      }
      sol.stats.status = AssignStatus::Feasible;
      break;
    case IpStatus::Optimal:
      sol.stats.status = AssignStatus::Optimal;
      break;
  }
  const std::size_t n = inst.num_tasks();
  sol.assignment.assign(n, 0);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
      if (res.x[g * n + t] > 0.5) {
        sol.assignment[t] = g;
        break;
      }
    }
  }
  sol.cost = assignment_cost(inst, sol.assignment);
  sol.lower_bound = res.status == IpStatus::Optimal ? sol.cost : 0.0;
  return sol;
}

}  // namespace svo::ip
