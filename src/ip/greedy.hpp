/// \file greedy.hpp
/// Greedy constructive solver for the task assignment IP: regret-ordered
/// min-cost insertion under deadline capacities, coverage repair for
/// constraint (13), then local-search polish. Fast (O(nk log n)) and used
/// both standalone (large instances) and as the B&B incumbent seed.
#pragma once

#include "ip/assignment.hpp"
#include "ip/local_search.hpp"

namespace svo::ip {

/// Options for the greedy solver.
struct GreedyOptions {
  /// Task processing order during construction.
  enum class Order {
    RegretDescending,  ///< By cost spread between two cheapest GSPs.
    TimeDescending,    ///< Hardest (longest) tasks first (best-fit-decreasing).
  };
  Order order = Order::RegretDescending;
  /// Polish the constructed assignment with local search.
  bool polish = true;
  LocalSearchOptions local_search;
};

/// Greedy + local search. Status is Feasible when a constraint-satisfying
/// assignment is found, Unknown otherwise (a heuristic can never prove
/// infeasibility). Never reports Optimal.
class GreedyAssignmentSolver final : public AssignmentSolver {
 public:
  explicit GreedyAssignmentSolver(GreedyOptions opts = {}) : opts_(opts) {}

  using AssignmentSolver::solve;
  [[nodiscard]] AssignmentSolution solve(
      const AssignmentInstance& inst) const override;
  [[nodiscard]] std::string name() const override { return "greedy"; }

 private:
  GreedyOptions opts_;
};

/// Construction step only (no polish, no payment check): attempts to build
/// an assignment satisfying (11)-(13). Returns empty vector on failure.
/// Exposed separately so the B&B can seed from it with its own polish.
[[nodiscard]] Assignment greedy_construct(const AssignmentInstance& inst,
                                          GreedyOptions::Order order);

}  // namespace svo::ip
