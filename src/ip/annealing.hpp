/// \file annealing.hpp
/// Simulated-annealing improvement for the task assignment IP — the
/// metaheuristic tier of the solver stack: greedy construct, anneal over
/// feasibility-preserving relocations/swaps, then local-search polish.
/// Escapes the local optima where plain descent (ip/local_search) stops;
/// used standalone and as an alternative incumbent seed for the B&B.
#pragma once

#include <cstdint>

#include "ip/assignment.hpp"
#include "ip/local_search.hpp"

namespace svo::ip {

/// Options for the annealer.
struct AnnealingOptions {
  /// Proposal count.
  std::size_t iterations = 30'000;
  /// Initial temperature as a fraction of the starting cost (adaptive to
  /// the instance's scale); temperature decays geometrically to
  /// `final_temperature_fraction` over the run.
  double initial_temperature_fraction = 0.02;
  double final_temperature_fraction = 1e-5;
  /// Probability that a proposal is a swap (vs a single relocation).
  double swap_probability = 0.4;
  /// RNG seed for the proposal/acceptance stream.
  std::uint64_t seed = 0xA44EA1;
};

/// Anneal `a` in place. Requires `a` to satisfy constraints (11)-(13) on
/// entry (checked); every intermediate state satisfies them too. Returns
/// the final cost (the best state visited, not the last accepted one).
double simulated_annealing(const AssignmentInstance& inst, Assignment& a,
                           const AnnealingOptions& opts = {});

/// Full solver: greedy construction, annealing, local-search polish.
/// Reports Feasible (within payment) or Unknown; never proves anything.
class AnnealingAssignmentSolver final : public AssignmentSolver {
 public:
  explicit AnnealingAssignmentSolver(AnnealingOptions opts = {})
      : opts_(opts) {}

  using AssignmentSolver::solve;
  [[nodiscard]] AssignmentSolution solve(
      const AssignmentInstance& inst) const override;
  [[nodiscard]] std::string name() const override { return "annealing"; }

 private:
  AnnealingOptions opts_;
};

}  // namespace svo::ip
