#include "ip/dag.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace svo::ip {

TaskDag::TaskDag(std::size_t n) : successors_(n), predecessors_(n) {
  detail::require(n > 0, "TaskDag: need at least one task");
}

void TaskDag::add_dependency(std::size_t pred, std::size_t succ) {
  detail::require(pred < num_tasks() && succ < num_tasks(),
                  "TaskDag::add_dependency: task out of range");
  detail::require(pred != succ, "TaskDag::add_dependency: self-loop");
  auto& out = successors_[pred];
  if (std::find(out.begin(), out.end(), succ) != out.end()) return;
  out.push_back(succ);
  predecessors_[succ].push_back(pred);
  ++edges_;
}

const std::vector<std::size_t>& TaskDag::successors(std::size_t t) const {
  detail::require(t < num_tasks(), "TaskDag::successors: task out of range");
  return successors_[t];
}

const std::vector<std::size_t>& TaskDag::predecessors(std::size_t t) const {
  detail::require(t < num_tasks(), "TaskDag::predecessors: task out of range");
  return predecessors_[t];
}

bool TaskDag::is_acyclic() const {
  // Kahn without materializing the order.
  std::vector<std::size_t> indegree(num_tasks());
  for (std::size_t t = 0; t < num_tasks(); ++t) {
    indegree[t] = predecessors_[t].size();
  }
  std::vector<std::size_t> queue;
  for (std::size_t t = 0; t < num_tasks(); ++t) {
    if (indegree[t] == 0) queue.push_back(t);
  }
  std::size_t seen = 0;
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    ++seen;
    for (const std::size_t s : successors_[t]) {
      if (--indegree[s] == 0) queue.push_back(s);
    }
  }
  return seen == num_tasks();
}

std::vector<std::size_t> TaskDag::topological_order() const {
  std::vector<std::size_t> indegree(num_tasks());
  for (std::size_t t = 0; t < num_tasks(); ++t) {
    indegree[t] = predecessors_[t].size();
  }
  std::vector<std::size_t> order;
  order.reserve(num_tasks());
  std::vector<std::size_t> queue;
  for (std::size_t t = 0; t < num_tasks(); ++t) {
    if (indegree[t] == 0) queue.push_back(t);
  }
  while (!queue.empty()) {
    const std::size_t t = queue.back();
    queue.pop_back();
    order.push_back(t);
    for (const std::size_t s : successors_[t]) {
      if (--indegree[s] == 0) queue.push_back(s);
    }
  }
  detail::require(order.size() == num_tasks(),
                  "TaskDag::topological_order: graph is cyclic");
  return order;
}

double TaskDag::critical_path_lower_bound(const linalg::Matrix& time) const {
  detail::require(time.cols() == num_tasks(),
                  "TaskDag::critical_path_lower_bound: task count mismatch");
  std::vector<double> min_time(num_tasks(),
                               std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < num_tasks(); ++t) {
    for (std::size_t g = 0; g < time.rows(); ++g) {
      min_time[t] = std::min(min_time[t], time(g, t));
    }
  }
  const std::vector<std::size_t> order = topological_order();
  std::vector<double> longest(num_tasks(), 0.0);
  double bound = 0.0;
  for (const std::size_t t : order) {
    longest[t] += min_time[t];
    bound = std::max(bound, longest[t]);
    for (const std::size_t s : successors_[t]) {
      longest[s] = std::max(longest[s], longest[t]);
    }
  }
  return bound;
}

namespace {

/// Core evaluator shared by schedule_fixed_assignment and the solver:
/// dispatch tasks in `order` (a valid topological order), each GSP
/// executing its tasks sequentially in dispatch order.
DagSchedule evaluate(const AssignmentInstance& inst, const TaskDag& dag,
                     const Assignment& assignment,
                     const std::vector<std::size_t>& order) {
  DagSchedule s;
  s.assignment = assignment;
  const std::size_t n = dag.num_tasks();
  s.start.assign(n, 0.0);
  s.finish.assign(n, 0.0);
  std::vector<double> available(inst.num_gsps(), 0.0);
  for (const std::size_t t : order) {
    const std::size_t g = assignment[t];
    double ready = 0.0;
    for (const std::size_t p : dag.predecessors(t)) {
      ready = std::max(ready, s.finish[p]);
    }
    s.start[t] = std::max(ready, available[g]);
    s.finish[t] = s.start[t] + inst.time(g, t);
    available[g] = s.finish[t];
    s.makespan = std::max(s.makespan, s.finish[t]);
    s.cost += inst.cost(g, t);
  }
  return s;
}

/// Verify `order` is a permutation consistent with the DAG.
void check_order(const TaskDag& dag, const std::vector<std::size_t>& order) {
  detail::require(order.size() == dag.num_tasks(),
                  "dag schedule: order arity mismatch");
  std::vector<std::size_t> position(dag.num_tasks(), SIZE_MAX);
  for (std::size_t i = 0; i < order.size(); ++i) {
    detail::require(order[i] < dag.num_tasks() &&
                        position[order[i]] == SIZE_MAX,
                    "dag schedule: order is not a permutation");
    position[order[i]] = i;
  }
  for (std::size_t t = 0; t < dag.num_tasks(); ++t) {
    for (const std::size_t succ : dag.successors(t)) {
      detail::require(position[t] < position[succ],
                      "dag schedule: order violates precedence");
    }
  }
}

/// HEFT upward ranks: avg execution time + max successor rank; the
/// descending-rank order is a topological order for positive times.
std::vector<std::size_t> rank_order(const AssignmentInstance& inst,
                                    const TaskDag& dag) {
  const std::size_t n = dag.num_tasks();
  std::vector<double> avg(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
      avg[t] += inst.time(g, t);
    }
    avg[t] /= static_cast<double>(inst.num_gsps());
  }
  const std::vector<std::size_t> topo = dag.topological_order();
  std::vector<double> rank(n, 0.0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t t = *it;
    double best_succ = 0.0;
    for (const std::size_t s : dag.successors(t)) {
      best_succ = std::max(best_succ, rank[s]);
    }
    rank[t] = avg[t] + best_succ;
  }
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rank[a] > rank[b];
  });
  return order;
}

/// Latest feasible finish per task: deadline minus the min-time critical
/// tail hanging below the task. A placement finishing after this bound
/// cannot lead to a deadline-feasible schedule (under optimistic tails).
std::vector<double> latest_finish_bounds(const AssignmentInstance& inst,
                                         const TaskDag& dag) {
  const std::size_t n = dag.num_tasks();
  std::vector<double> min_time(n, std::numeric_limits<double>::infinity());
  for (std::size_t t = 0; t < n; ++t) {
    for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
      min_time[t] = std::min(min_time[t], inst.time(g, t));
    }
  }
  const std::vector<std::size_t> topo = dag.topological_order();
  std::vector<double> tail(n, 0.0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    const std::size_t t = *it;
    for (const std::size_t s : dag.successors(t)) {
      tail[t] = std::max(tail[t], min_time[s] + tail[s]);
    }
  }
  std::vector<double> bound(n, 0.0);
  for (std::size_t t = 0; t < n; ++t) bound[t] = inst.deadline - tail[t];
  return bound;
}

}  // namespace

DagSchedule schedule_fixed_assignment(const AssignmentInstance& inst,
                                      const TaskDag& dag,
                                      const Assignment& assignment) {
  inst.validate();
  detail::require(dag.num_tasks() == inst.num_tasks(),
                  "schedule_fixed_assignment: DAG/instance task mismatch");
  detail::require(assignment.size() == inst.num_tasks(),
                  "schedule_fixed_assignment: assignment arity mismatch");
  for (const std::size_t g : assignment) {
    detail::require(g < inst.num_gsps(),
                    "schedule_fixed_assignment: GSP out of range");
  }
  const std::vector<std::size_t> order = dag.topological_order();
  check_order(dag, order);
  return evaluate(inst, dag, assignment, order);
}

DagSolverAdapter::DagSolverAdapter(const TaskDag& dag,
                                   DagSchedulerOptions opts)
    : dag_(dag), opts_(opts) {
  detail::require(dag.is_acyclic(), "DagSolverAdapter: DAG is cyclic");
}

DagSchedule DagSolverAdapter::schedule(const AssignmentInstance& inst) const {
  inst.validate();
  detail::require(dag_.num_tasks() == inst.num_tasks(),
                  "DagSolverAdapter: DAG/instance task mismatch");
  const std::size_t k = inst.num_gsps();
  const std::vector<std::size_t> order = rank_order(inst, dag_);
  const std::vector<double> lff =
      opts_.cost_aware ? latest_finish_bounds(inst, dag_)
                       : std::vector<double>{};

  Assignment assignment(inst.num_tasks(), 0);
  std::vector<double> available(k, 0.0);
  std::vector<double> finish(inst.num_tasks(), 0.0);
  std::vector<std::size_t> count(k, 0);
  for (const std::size_t t : order) {
    double ready = 0.0;
    for (const std::size_t p : dag_.predecessors(t)) {
      ready = std::max(ready, finish[p]);
    }
    std::size_t chosen = SIZE_MAX;
    if (opts_.cost_aware) {
      // Cheapest GSP whose finish keeps the optimistic tail feasible.
      std::vector<std::size_t> by_cost(k);
      std::iota(by_cost.begin(), by_cost.end(), 0);
      std::stable_sort(by_cost.begin(), by_cost.end(),
                       [&](std::size_t a, std::size_t b) {
                         return inst.cost(a, t) < inst.cost(b, t);
                       });
      for (const std::size_t g : by_cost) {
        const double eft = std::max(ready, available[g]) + inst.time(g, t);
        if (eft <= lff[t]) {
          chosen = g;
          break;
        }
      }
    }
    if (chosen == SIZE_MAX) {
      // Classic HEFT: earliest finish time.
      double best_eft = std::numeric_limits<double>::infinity();
      for (std::size_t g = 0; g < k; ++g) {
        const double eft = std::max(ready, available[g]) + inst.time(g, t);
        if (eft < best_eft) {
          best_eft = eft;
          chosen = g;
        }
      }
    }
    assignment[t] = chosen;
    finish[t] = std::max(ready, available[chosen]) + inst.time(chosen, t);
    available[chosen] = finish[t];
    ++count[chosen];
  }

  // Coverage repair for constraint (13): hand every idle GSP the
  // cheapest task owned by a donor with at least two tasks.
  if (inst.require_all_gsps_used) {
    for (std::size_t g = 0; g < k; ++g) {
      if (count[g] > 0) continue;
      std::size_t best_task = SIZE_MAX;
      double best_delta = std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < inst.num_tasks(); ++t) {
        if (count[assignment[t]] <= 1) continue;
        const double delta = inst.cost(g, t) - inst.cost(assignment[t], t);
        if (delta < best_delta) {
          best_delta = delta;
          best_task = t;
        }
      }
      if (best_task == SIZE_MAX) break;  // unrepairable; caller rejects
      --count[assignment[best_task]];
      assignment[best_task] = g;
      ++count[g];
    }
  }
  return schedule_fixed_assignment(inst, dag_, assignment);
}

AssignmentSolution DagSolverAdapter::solve(
    const AssignmentInstance& inst) const {
  AssignmentSolution sol;
  if (inst.require_all_gsps_used && inst.num_gsps() > inst.num_tasks()) {
    sol.stats.status = AssignStatus::Infeasible;  // pigeonhole: provable
    return sol;
  }
  const DagSchedule s = schedule(inst);
  sol.lower_bound = dag_.critical_path_lower_bound(inst.time);
  // Feasibility: makespan within deadline, payment, and coverage.
  if (s.makespan > inst.deadline || s.cost > inst.payment) {
    sol.stats.status = AssignStatus::Unknown;
    return sol;
  }
  if (inst.require_all_gsps_used) {
    std::vector<bool> used(inst.num_gsps(), false);
    for (const std::size_t g : s.assignment) used[g] = true;
    for (const bool u : used) {
      if (!u) {
        sol.stats.status = AssignStatus::Unknown;
        return sol;
      }
    }
  }
  sol.stats.status = AssignStatus::Feasible;
  sol.assignment = s.assignment;
  sol.cost = s.cost;
  return sol;
}

}  // namespace svo::ip
