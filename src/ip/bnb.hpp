/// \file bnb.hpp
/// Specialized depth-first branch-and-bound for the task assignment IP
/// (9)-(14) — the workhorse behind TVOF's "IP-B&B" step (Algorithm 1,
/// line 5). Exact with proof on small instances; anytime (greedy-seeded,
/// node/time budgeted) at paper scale. See DESIGN.md §1 and §4.4.
///
/// Search organization:
///  - tasks are branched in descending static-regret order;
///  - children (GSP choices) are explored in ascending cost order;
///  - node lower bound = cost so far + sum of capacity-blind per-task
///    minimum costs of the unassigned suffix (monotone, O(1) per node);
///  - pruning against the incumbent, the payment cap (10), per-GSP
///    deadline capacity (11), and a coverage counting argument for (13).
#pragma once

#include "ip/assignment.hpp"
#include "ip/local_search.hpp"

namespace svo::ip {

/// Options for the B&B solver.
struct BnbOptions {
  /// Node budget; exceeding it makes the result anytime (no proof).
  std::size_t max_nodes = 500'000;
  /// Node budget for warm-hinted solves (0 = use max_nodes). A warm
  /// solve re-verifies an incrementally modified instance whose
  /// predecessor already received a full budget, so capping the
  /// re-verification keeps mechanism-loop work proportional to the
  /// change instead of re-paying the full budget per iteration. Solves
  /// that exhaust within the reduced budget (the exact regime) are
  /// bit-identical to cold; truncated ones keep the warm incumbent.
  std::size_t warm_max_nodes = 0;
  /// Wall-clock budget in seconds; 0 disables the check.
  double time_limit_seconds = 0.0;
  /// Seed the incumbent with greedy construction + local search.
  bool seed_with_greedy = true;
  /// Local-search options used to polish the greedy seed.
  LocalSearchOptions polish;
};

/// Branch-and-bound solver. Status semantics:
///  - Optimal:    search space exhausted, incumbent proven optimal;
///  - Infeasible: search space exhausted without any feasible leaf;
///  - Feasible:   budget hit, best incumbent returned;
///  - Unknown:    budget hit before any incumbent was found.
class BnbAssignmentSolver final : public AssignmentSolver {
 public:
  explicit BnbAssignmentSolver(BnbOptions opts = {}) : opts_(opts) {}

  [[nodiscard]] AssignmentSolution solve(
      const AssignmentInstance& inst) const override;
  /// Warm-started solve (ip/warm_start.hpp): seeds the incumbent from
  /// `warm` when it is feasible and filters the cached parent cost
  /// orders instead of re-sorting. Hints only tighten pruning — a run
  /// to proof returns the same status and cost as the cold solve.
  [[nodiscard]] AssignmentSolution solve(const AssignmentInstance& inst,
                                         const WarmStart& warm) const override;
  [[nodiscard]] std::string name() const override { return "bnb"; }

  [[nodiscard]] const BnbOptions& options() const noexcept { return opts_; }

 private:
  [[nodiscard]] AssignmentSolution solve_impl(const AssignmentInstance& inst,
                                              const WarmStart* warm) const;

  BnbOptions opts_;
};

}  // namespace svo::ip
