#include "ip/greedy.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace svo::ip {

namespace {

/// Regret of a task: gap between its two cheapest GSPs (capacity-blind;
/// used only for ordering). Single-GSP instances get zero regret.
double static_regret(const AssignmentInstance& inst, std::size_t t) {
  double best = std::numeric_limits<double>::infinity();
  double second = best;
  for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
    const double c = inst.cost(g, t);
    if (c < best) {
      second = best;
      best = c;
    } else if (c < second) {
      second = c;
    }
  }
  return std::isfinite(second) ? second - best : 0.0;
}

double max_time(const AssignmentInstance& inst, std::size_t t) {
  double mx = 0.0;
  for (std::size_t g = 0; g < inst.num_gsps(); ++g) {
    mx = std::max(mx, inst.time(g, t));
  }
  return mx;
}

}  // namespace

Assignment greedy_construct(const AssignmentInstance& inst,
                            GreedyOptions::Order order) {
  inst.validate();
  const std::size_t k = inst.num_gsps();
  const std::size_t n = inst.num_tasks();
  if (inst.require_all_gsps_used && k > n) return {};

  std::vector<std::size_t> task_order(n);
  std::iota(task_order.begin(), task_order.end(), 0);
  std::vector<double> key(n);
  for (std::size_t t = 0; t < n; ++t) {
    key[t] = (order == GreedyOptions::Order::RegretDescending)
                 ? static_regret(inst, t)
                 : max_time(inst, t);
  }
  std::stable_sort(task_order.begin(), task_order.end(),
                   [&](std::size_t a, std::size_t b) { return key[a] > key[b]; });

  Assignment a(n, SIZE_MAX);
  std::vector<double> load(k, 0.0);
  std::vector<std::size_t> count(k, 0);
  for (const std::size_t t : task_order) {
    std::size_t best_g = SIZE_MAX;
    double best_c = std::numeric_limits<double>::infinity();
    double best_slack = -1.0;
    for (std::size_t g = 0; g < k; ++g) {
      const double tm = inst.time(g, t);
      if (load[g] + tm > inst.deadline) continue;
      const double c = inst.cost(g, t);
      const double slack = inst.deadline - load[g] - tm;
      if (c < best_c - 1e-12 ||
          (c < best_c + 1e-12 && slack > best_slack)) {
        best_g = g;
        best_c = c;
        best_slack = slack;
      }
    }
    if (best_g == SIZE_MAX) return {};  // no GSP can still take this task
    a[t] = best_g;
    load[best_g] += inst.time(best_g, t);
    ++count[best_g];
  }

  if (inst.require_all_gsps_used) {
    // Coverage repair: give every empty GSP its cheapest feasible task
    // taken from a donor that keeps at least one task.
    for (std::size_t g = 0; g < k; ++g) {
      if (count[g] > 0) continue;
      std::size_t best_t = SIZE_MAX;
      double best_delta = std::numeric_limits<double>::infinity();
      for (std::size_t t = 0; t < n; ++t) {
        const std::size_t from = a[t];
        if (count[from] <= 1) continue;
        const double tm = inst.time(g, t);
        if (load[g] + tm > inst.deadline) continue;
        const double delta = inst.cost(g, t) - inst.cost(from, t);
        if (delta < best_delta) {
          best_delta = delta;
          best_t = t;
        }
      }
      if (best_t == SIZE_MAX) return {};  // cannot cover GSP g
      const std::size_t from = a[best_t];
      load[from] -= inst.time(from, best_t);
      --count[from];
      a[best_t] = g;
      load[g] += inst.time(g, best_t);
      ++count[g];
    }
  }
  return a;
}

AssignmentSolution GreedyAssignmentSolver::solve(
    const AssignmentInstance& inst) const {
  AssignmentSolution sol;
  Assignment a = greedy_construct(inst, opts_.order);
  if (a.empty() && opts_.order == GreedyOptions::Order::RegretDescending) {
    // Second chance with the other ordering: different orders fail on
    // different tight instances.
    a = greedy_construct(inst, GreedyOptions::Order::TimeDescending);
  }
  if (a.empty()) {
    sol.stats.status = AssignStatus::Unknown;
    return sol;
  }
  double cost = assignment_cost(inst, a);
  if (opts_.polish) cost = local_search(inst, a, opts_.local_search);
  if (cost > inst.payment + 1e-9) {
    // Heuristic could not get under the payment cap; inconclusive.
    sol.stats.status = AssignStatus::Unknown;
    return sol;
  }
  sol.stats.status = AssignStatus::Feasible;
  sol.assignment = std::move(a);
  sol.cost = cost;
  return sol;
}

}  // namespace svo::ip
