#include "ip/local_search.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace svo::ip {

namespace {

/// Mutable view of an assignment's per-GSP state.
struct State {
  std::vector<double> load;             // summed time per GSP
  std::vector<std::size_t> task_count;  // tasks per GSP
  double cost = 0.0;

  State(const AssignmentInstance& inst, const Assignment& a)
      : load(inst.num_gsps(), 0.0), task_count(inst.num_gsps(), 0) {
    for (std::size_t t = 0; t < a.size(); ++t) {
      load[a[t]] += inst.time(a[t], t);
      ++task_count[a[t]];
      cost += inst.cost(a[t], t);
    }
  }
};

/// One relocation pass; returns true if any move improved the cost.
bool move_pass(const AssignmentInstance& inst, Assignment& a, State& st) {
  const std::size_t k = inst.num_gsps();
  bool improved = false;
  for (std::size_t t = 0; t < a.size(); ++t) {
    const std::size_t from = a[t];
    // Donor must keep at least one task when (13) is enforced.
    if (inst.require_all_gsps_used && st.task_count[from] <= 1) continue;
    const double c_from = inst.cost(from, t);
    std::size_t best_g = from;
    double best_c = c_from;
    for (std::size_t g = 0; g < k; ++g) {
      if (g == from) continue;
      const double c_g = inst.cost(g, t);
      if (c_g >= best_c) continue;
      if (st.load[g] + inst.time(g, t) > inst.deadline) continue;
      best_g = g;
      best_c = c_g;
    }
    if (best_g != from) {
      st.load[from] -= inst.time(from, t);
      --st.task_count[from];
      st.load[best_g] += inst.time(best_g, t);
      ++st.task_count[best_g];
      st.cost += best_c - c_from;
      a[t] = best_g;
      improved = true;
    }
  }
  return improved;
}

/// Try swapping the GSPs of tasks t and u; applies and returns true when
/// the swap is cost-improving and feasible.
bool try_swap(const AssignmentInstance& inst, Assignment& a, State& st,
              std::size_t t, std::size_t u) {
  const std::size_t gt = a[t];
  const std::size_t gu = a[u];
  if (gt == gu) return false;
  const double delta = inst.cost(gu, t) + inst.cost(gt, u) -
                       inst.cost(gt, t) - inst.cost(gu, u);
  if (delta >= -1e-12) return false;
  const double new_load_gt =
      st.load[gt] - inst.time(gt, t) + inst.time(gt, u);
  const double new_load_gu =
      st.load[gu] - inst.time(gu, u) + inst.time(gu, t);
  if (new_load_gt > inst.deadline || new_load_gu > inst.deadline) return false;
  st.load[gt] = new_load_gt;
  st.load[gu] = new_load_gu;
  st.cost += delta;
  std::swap(a[t], a[u]);
  return true;
}

}  // namespace

double local_search(const AssignmentInstance& inst, Assignment& a,
                    const LocalSearchOptions& opts) {
  detail::require(check_feasible(inst, a).empty() ||
                      // Payment (10) is allowed to be violated on entry —
                      // local search only reduces cost, the caller decides.
                      check_feasible(inst, a).rfind("payment", 0) == 0,
                  "local_search: entry assignment violates (11)-(13)");
  State st(inst, a);
  for (std::size_t pass = 0; pass < opts.max_move_passes; ++pass) {
    if (!move_pass(inst, a, st)) break;
  }
  if (opts.max_swap_passes > 0 && inst.num_gsps() > 1 && a.size() > 1) {
    util::Xoshiro256 rng(opts.seed);
    for (std::size_t pass = 0; pass < opts.max_swap_passes; ++pass) {
      bool improved = false;
      if (opts.swap_sample_per_task == 0) {
        for (std::size_t t = 0; t + 1 < a.size(); ++t) {
          for (std::size_t u = t + 1; u < a.size(); ++u) {
            improved |= try_swap(inst, a, st, t, u);
          }
        }
      } else {
        for (std::size_t t = 0; t < a.size(); ++t) {
          for (std::size_t s = 0; s < opts.swap_sample_per_task; ++s) {
            const std::size_t u = rng.index(a.size());
            if (u != t) improved |= try_swap(inst, a, st, t, u);
          }
        }
      }
      // A swap pass may open relocation opportunities.
      if (improved) {
        while (move_pass(inst, a, st)) {
        }
      } else {
        break;
      }
    }
  }
  return st.cost;
}

}  // namespace svo::ip
