#include "ip/bnb.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "ip/greedy.hpp"
#include "ip/warm_start.hpp"
#include "obs/trace.hpp"
#include "util/timer.hpp"

namespace svo::ip {

namespace {

constexpr double kEps = 1e-9;

/// All search state for one solve; DFS is recursive (frame is O(1),
/// depth = number of tasks).
class Search {
 public:
  /// `cache`/`rows` (both set or both null) reuse a parent instance's
  /// per-task cost orders: the restricted orders are obtained by
  /// filtering the cached ones, which is bit-identical to re-sorting
  /// because row restriction preserves relative order and both sorts
  /// are stable.
  Search(const AssignmentInstance& inst, const BnbOptions& opts,
         const CostOrderCache* cache = nullptr,
         const std::vector<std::size_t>* rows = nullptr)
      : inst_(inst), opts_(opts), k_(inst.num_gsps()), n_(inst.num_tasks()) {
    // Child order per task (GSPs by ascending cost), per-task minimum
    // cost, and regret (cost spread of the two cheapest GSPs).
    std::vector<double> regret(n_, 0.0);
    min_cost_.assign(n_, 0.0);
    gsp_order_.assign(n_ * k_, 0);
    if (cache != nullptr && rows != nullptr) {
      std::vector<std::size_t> child_of(cache->num_gsps(), SIZE_MAX);
      for (std::size_t r = 0; r < k_; ++r) child_of[(*rows)[r]] = r;
      for (std::size_t t = 0; t < n_; ++t) {
        const std::size_t* full = cache->order(t);
        auto* row = gsp_order_.data() + t * k_;
        std::size_t w = 0;
        for (std::size_t i = 0; i < cache->num_gsps() && w < k_; ++i) {
          const std::size_t child = child_of[full[i]];
          if (child != SIZE_MAX) row[w++] = child;
        }
        min_cost_[t] = inst_.cost(row[0], t);
        regret[t] = k_ > 1 ? inst_.cost(row[1], t) - min_cost_[t] : 0.0;
      }
    } else {
      for (std::size_t t = 0; t < n_; ++t) {
        double best = std::numeric_limits<double>::infinity();
        double second = best;
        for (std::size_t g = 0; g < k_; ++g) {
          const double c = inst_.cost(g, t);
          if (c < best) {
            second = best;
            best = c;
          } else if (c < second) {
            second = c;
          }
        }
        min_cost_[t] = best;
        regret[t] = std::isfinite(second) ? second - best : 0.0;
      }
      for (std::size_t t = 0; t < n_; ++t) {
        auto* row = gsp_order_.data() + t * k_;
        std::iota(row, row + k_, std::size_t{0});
        std::stable_sort(row, row + k_, [&](std::size_t a, std::size_t b) {
          return inst_.cost(a, t) < inst_.cost(b, t);
        });
      }
    }
    // Branching order: descending regret; breaking high-regret
    // decisions first tightens bounds early.
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::stable_sort(order_.begin(), order_.end(), [&](std::size_t a, std::size_t b) {
      return regret[a] > regret[b];
    });
    // Suffix of capacity-blind minimum costs in branching order.
    suffix_min_.assign(n_ + 1, 0.0);
    for (std::size_t i = n_; i-- > 0;) {
      suffix_min_[i] = suffix_min_[i + 1] + min_cost_[order_[i]];
    }
    load_.assign(k_, 0.0);
    count_.assign(k_, 0);
    empties_ = inst_.require_all_gsps_used ? k_ : 0;
    current_.assign(n_, 0);
  }

  void seed_incumbent(Assignment a, double cost) {
    if (cost <= inst_.payment + kEps &&
        (!has_incumbent_ || cost < incumbent_cost_ - kEps)) {
      incumbent_ = std::move(a);
      incumbent_cost_ = cost;
      has_incumbent_ = true;
      ++incumbent_updates_;
    }
  }

  /// Run the DFS; returns true if the space was fully exhausted.
  bool run() {
    // Quick proven-infeasible screens.
    if (inst_.require_all_gsps_used && k_ > n_) return true;
    for (std::size_t t = 0; t < n_; ++t) {
      bool any = false;
      for (std::size_t g = 0; g < k_; ++g) {
        if (inst_.time(g, t) <= inst_.deadline) {
          any = true;
          break;
        }
      }
      if (!any) return true;  // some task fits nowhere: exhausted, no leaf
    }
    dfs(0, 0.0);
    return !truncated_;
  }

  [[nodiscard]] bool has_incumbent() const noexcept { return has_incumbent_; }
  [[nodiscard]] const Assignment& incumbent() const noexcept { return incumbent_; }
  [[nodiscard]] double incumbent_cost() const noexcept { return incumbent_cost_; }
  [[nodiscard]] std::size_t nodes() const noexcept { return nodes_; }
  /// Incumbent improvements (seed acceptances + leaf updates) — the obs
  /// layer reports these per solve; counting here never alters search.
  [[nodiscard]] std::size_t incumbent_updates() const noexcept {
    return incumbent_updates_;
  }
  [[nodiscard]] double root_bound() const noexcept { return suffix_min_[0]; }

 private:
  bool budget_exhausted() {
    if (nodes_ >= opts_.max_nodes) return true;
    if (opts_.time_limit_seconds > 0.0 && (nodes_ & 1023U) == 0 &&
        timer_.seconds() > opts_.time_limit_seconds) {
      return true;
    }
    return false;
  }

  void dfs(std::size_t depth, double cost_so_far) {
    if (truncated_) return;
    if (depth == n_) {
      // All constraints hold by construction of the branching.
      if (!has_incumbent_ || cost_so_far < incumbent_cost_ - kEps) {
        incumbent_ = current_;
        incumbent_cost_ = cost_so_far;
        has_incumbent_ = true;
        ++incumbent_updates_;
      }
      return;
    }
    const std::size_t t = order_[depth];
    const std::size_t remaining_after = n_ - depth - 1;
    const double suffix = suffix_min_[depth + 1];
    const auto* children = gsp_order_.data() + t * k_;
    for (std::size_t ci = 0; ci < k_; ++ci) {
      const std::size_t g = children[ci];
      const double c = inst_.cost(g, t);
      const double bound = cost_so_far + c + suffix;
      // Children are cost-sorted: once the bound fails, all later fail.
      if (bound > inst_.payment + kEps) break;
      if (has_incumbent_ && bound >= incumbent_cost_ - kEps) break;
      const double tm = inst_.time(g, t);
      if (load_[g] + tm > inst_.deadline + kEps) continue;
      const bool was_empty = inst_.require_all_gsps_used && count_[g] == 0;
      const std::size_t empties_after = empties_ - (was_empty ? 1 : 0);
      if (remaining_after < empties_after) continue;  // (13) unreachable

      ++nodes_;
      if (budget_exhausted()) {
        truncated_ = true;
        return;
      }
      load_[g] += tm;
      ++count_[g];
      if (was_empty) --empties_;
      current_[t] = g;
      dfs(depth + 1, cost_so_far + c);
      load_[g] -= tm;
      --count_[g];
      if (was_empty) ++empties_;
      if (truncated_) return;
    }
  }

  const AssignmentInstance& inst_;
  const BnbOptions& opts_;
  std::size_t k_;
  std::size_t n_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> gsp_order_;
  std::vector<double> min_cost_;
  std::vector<double> suffix_min_;
  std::vector<double> load_;
  std::vector<std::size_t> count_;
  std::size_t empties_ = 0;
  Assignment current_;
  Assignment incumbent_;
  double incumbent_cost_ = std::numeric_limits<double>::infinity();
  bool has_incumbent_ = false;
  bool truncated_ = false;
  std::size_t nodes_ = 0;
  std::size_t incumbent_updates_ = 0;
  util::WallTimer timer_;
};

}  // namespace

AssignmentSolution BnbAssignmentSolver::solve(
    const AssignmentInstance& inst) const {
  return solve_impl(inst, nullptr);
}

AssignmentSolution BnbAssignmentSolver::solve(const AssignmentInstance& inst,
                                              const WarmStart& warm) const {
  return solve_impl(inst, &warm);
}

AssignmentSolution BnbAssignmentSolver::solve_impl(
    const AssignmentInstance& inst, const WarmStart* warm) const {
  inst.validate();
  obs::Span span("ip.bnb.solve", "ip");

  // Reuse the parent instance's cost orders when the hint is coherent
  // with this instance; otherwise fall back to recomputing them.
  const CostOrderCache* cache = nullptr;
  const std::vector<std::size_t>* rows = nullptr;
  if (warm != nullptr && warm->has_bounds() &&
      warm->rows.size() == inst.num_gsps() &&
      warm->cost_order->num_tasks() == inst.num_tasks()) {
    bool coherent = true;
    for (const std::size_t p : warm->rows) {
      coherent = coherent && p < warm->cost_order->num_gsps();
    }
    if (coherent) {
      cache = warm->cost_order.get();
      rows = &warm->rows;
    }
  }
  // Accept the incumbent hint only when fully feasible ((10)-(13)); it
  // can then only tighten pruning, never change the proven status/cost.
  const bool warm_incumbent_ok =
      warm != nullptr && warm->has_incumbent() &&
      warm->incumbent.size() == inst.num_tasks() &&
      check_feasible(inst, warm->incumbent).empty();

  // A solve that accepted any warm hint is a re-verification of an
  // incrementally modified instance; warm_max_nodes (when set) caps it.
  BnbOptions effective = opts_;
  if (opts_.warm_max_nodes > 0 && (cache != nullptr || warm_incumbent_ok)) {
    effective.max_nodes = std::min(effective.max_nodes, opts_.warm_max_nodes);
  }
  Search search(inst, effective, cache, rows);

  AssignmentSolution sol;
  // Warm incumbent first: a repaired previous mapping is typically
  // tighter than a fresh greedy seed.
  if (warm_incumbent_ok) {
    search.seed_incumbent(warm->incumbent, warm->incumbent_cost);
    sol.stats.warm_start_used = true;
    sol.stats.incumbent_reused_cost = warm->incumbent_cost;
    sol.stats.repair_moves = warm->repair_moves;
  }
  if (opts_.seed_with_greedy) {
    Assignment seed = greedy_construct(inst, GreedyOptions::Order::RegretDescending);
    if (seed.empty()) {
      seed = greedy_construct(inst, GreedyOptions::Order::TimeDescending);
    }
    if (!seed.empty()) {
      const double cost = local_search(inst, seed, opts_.polish);
      search.seed_incumbent(std::move(seed), cost);
    }
  }
  const bool exhausted = search.run();

  sol.stats.nodes = search.nodes();
  sol.lower_bound = search.root_bound();
  if (search.has_incumbent()) {
    sol.assignment = search.incumbent();
    // Canonical cost: always the task-order sum, so the same final
    // assignment reports the same double regardless of the summation
    // order the search happened to use.
    sol.cost = assignment_cost(inst, sol.assignment);
    sol.stats.status =
        exhausted ? AssignStatus::Optimal : AssignStatus::Feasible;
    if (exhausted) sol.lower_bound = sol.cost;
  } else {
    sol.stats.status =
        exhausted ? AssignStatus::Infeasible : AssignStatus::Unknown;
  }
  if (span.active()) {
    // Telemetry is sampled at the solve boundary, never per node: the
    // search above runs exactly as it does with the recorder off.
    span.arg("gsps", static_cast<double>(inst.num_gsps()));
    span.arg("tasks", static_cast<double>(inst.num_tasks()));
    span.arg("nodes", static_cast<double>(sol.stats.nodes));
    span.arg("incumbents", static_cast<double>(search.incumbent_updates()));
    span.arg("warm", sol.stats.warm_start_used ? 1.0 : 0.0);
    span.arg("cost", sol.cost);
    span.arg("status", to_string(sol.stats.status));
    obs::MetricRegistry& m = obs::Recorder::instance().metrics();
    m.counter("ip.bnb.solves").add();
    m.counter("ip.bnb.nodes").add(sol.stats.nodes);
    m.counter("ip.bnb.incumbent_updates").add(search.incumbent_updates());
    if (sol.stats.warm_start_used) m.counter("ip.bnb.warm_solves").add();
    if (!exhausted) m.counter("ip.bnb.budget_truncated").add();
    m.histogram("ip.bnb.nodes_per_solve")
        .observe(static_cast<double>(sol.stats.nodes));
  }
  return sol;
}

}  // namespace svo::ip
