/// \file dag.hpp
/// Task-dependency extension — the paper's stated future work ("we would
/// like to consider the task dependencies in our VO formation model").
///
/// A TaskDag adds precedence constraints over the program's tasks; the
/// deadline then bounds the *makespan* of the whole schedule instead of
/// each GSP's summed load (the natural generalization of constraint
/// (11)). Scheduling is a HEFT-style list scheduler (upward ranks,
/// earliest-finish-time placement with insertion) with a cost-aware
/// placement rule, plus a fixed-assignment schedule evaluator used for
/// validation and coverage repair. Inter-task communication costs are
/// assumed zero (tasks exchange data through shared grid storage), the
/// common bag-of-workflows simplification; the APIs leave room to add
/// them later.
///
/// DagSolverAdapter exposes all of this through the ip::AssignmentSolver
/// interface, so TVOF, RVOF and merge-and-split run on DAG programs
/// without modification.
#pragma once

#include "ip/assignment.hpp"

namespace svo::ip {

/// Immutable-after-build precedence DAG over n tasks.
class TaskDag {
 public:
  /// n isolated tasks (a bag-of-tasks — the paper's base model).
  explicit TaskDag(std::size_t n);

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return successors_.size();
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_; }

  /// Add `pred` -> `succ` (pred must finish before succ starts).
  /// Duplicate edges are ignored. Throws InvalidArgument on self-loops
  /// or out-of-range ids. Cycles are only detected by is_acyclic() /
  /// topological_order(), since detection per edge would be quadratic.
  void add_dependency(std::size_t pred, std::size_t succ);

  [[nodiscard]] const std::vector<std::size_t>& successors(std::size_t t) const;
  [[nodiscard]] const std::vector<std::size_t>& predecessors(std::size_t t) const;

  /// Kahn's algorithm; false when a cycle exists.
  [[nodiscard]] bool is_acyclic() const;

  /// Topological order. Throws InvalidArgument when cyclic.
  [[nodiscard]] std::vector<std::size_t> topological_order() const;

  /// Lower bound on any schedule's makespan: the critical-path length
  /// when every task runs at its fastest GSP (time matrix row minimum).
  [[nodiscard]] double critical_path_lower_bound(
      const linalg::Matrix& time) const;

 private:
  std::vector<std::vector<std::size_t>> successors_;
  std::vector<std::vector<std::size_t>> predecessors_;
  std::size_t edges_ = 0;
};

/// A complete schedule: assignment plus start/finish times.
struct DagSchedule {
  Assignment assignment;       ///< task -> GSP row index
  std::vector<double> start;   ///< start time per task
  std::vector<double> finish;  ///< finish time per task
  double makespan = 0.0;
  double cost = 0.0;
};

/// Evaluate a *given* assignment under list scheduling: tasks are
/// dispatched in topological order; each GSP executes its tasks
/// sequentially in dispatch order. Deterministic; used for validation,
/// repair, and as the fixed-assignment half of the solver. Throws on a
/// cyclic DAG or arity mismatch.
[[nodiscard]] DagSchedule schedule_fixed_assignment(
    const AssignmentInstance& inst, const TaskDag& dag,
    const Assignment& assignment);

/// Options for the HEFT-style solver.
struct DagSchedulerOptions {
  /// Candidate GSPs for a task are scanned cheapest-first; the first one
  /// whose placement keeps the task's latest-feasible-finish bound is
  /// taken. Setting this false reverts to classic HEFT (pure earliest
  /// finish time), ignoring cost until the final feasibility check.
  bool cost_aware = true;
};

/// HEFT-style DAG scheduler behind the AssignmentSolver interface: the
/// drop-in "IP-B&B" replacement for programs with dependencies. Status
/// is Feasible when the schedule satisfies makespan <= deadline,
/// coverage (13) and payment (10); Unknown otherwise (a list scheduler
/// proves nothing), except the pigeonhole case (more GSPs than tasks)
/// which is proven Infeasible.
class DagSolverAdapter final : public AssignmentSolver {
 public:
  /// `dag` must outlive the adapter and match the task count of every
  /// instance passed to solve().
  explicit DagSolverAdapter(const TaskDag& dag,
                            DagSchedulerOptions opts = {});

  using AssignmentSolver::solve;
  [[nodiscard]] AssignmentSolution solve(
      const AssignmentInstance& inst) const override;
  [[nodiscard]] std::string name() const override { return "dag-heft"; }

  /// Full schedule of the last successful solve is not retained (the
  /// solver is stateless/thread-safe); call this to rebuild it.
  [[nodiscard]] DagSchedule schedule(const AssignmentInstance& inst) const;

 private:
  const TaskDag& dag_;
  DagSchedulerOptions opts_;
};

}  // namespace svo::ip
