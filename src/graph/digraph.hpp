/// \file digraph.hpp
/// Weighted directed graph. Vertices are dense indices [0, n); each edge
/// (i, j, w) carries a non-negative weight. This is the representation
/// under the paper's trust graph (G, E) with weights u_ij.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace svo::graph {

/// One outgoing edge.
struct Edge {
  std::size_t to = 0;
  double weight = 0.0;
};

/// Weighted digraph over dense vertex ids with O(1) amortized edge
/// insertion and O(out-degree) neighbor iteration.
class Digraph {
 public:
  /// Graph with n isolated vertices.
  explicit Digraph(std::size_t n = 0) : adjacency_(n) {}

  [[nodiscard]] std::size_t vertex_count() const noexcept {
    return adjacency_.size();
  }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_; }

  /// Add or overwrite edge (from -> to) with `weight` >= 0.
  /// Self-loops are allowed but the generators never create them.
  /// Throws InvalidArgument on out-of-range vertices or negative weight.
  void set_edge(std::size_t from, std::size_t to, double weight);

  /// Remove edge (from -> to) if present; returns whether it existed.
  bool remove_edge(std::size_t from, std::size_t to);

  /// Weight of (from -> to), or nullopt when absent.
  [[nodiscard]] std::optional<double> edge_weight(std::size_t from,
                                                  std::size_t to) const;

  /// Outgoing edges of a vertex.
  [[nodiscard]] const std::vector<Edge>& out_edges(std::size_t v) const;

  /// Out-degree / weighted out-degree.
  [[nodiscard]] std::size_t out_degree(std::size_t v) const;
  [[nodiscard]] double out_weight(std::size_t v) const;

  /// In-degree / weighted in-degree (O(E); cached nowhere — call sparingly).
  [[nodiscard]] std::size_t in_degree(std::size_t v) const;
  [[nodiscard]] double in_weight(std::size_t v) const;

  /// Dense adjacency (weight) matrix; absent edges are 0.
  [[nodiscard]] linalg::Matrix adjacency_matrix() const;

  /// Subgraph induced by `keep[v] == true`, with vertices renumbered in
  /// ascending original order. `original_ids`, when non-null, receives the
  /// mapping new-id -> old-id. Throws DimensionMismatch if keep.size() != n.
  [[nodiscard]] Digraph induced_subgraph(
      const std::vector<bool>& keep,
      std::vector<std::size_t>* original_ids = nullptr) const;

 private:
  void check_vertex(std::size_t v) const;

  std::vector<std::vector<Edge>> adjacency_;
  std::size_t edges_ = 0;
};

}  // namespace svo::graph
