/// \file centrality.hpp
/// Graph centrality measures. The paper's reputation metric is eigenvector
/// centrality of the normalized trust matrix (Section II-B cites [5]-[8],
/// [19], [20]); degree, closeness and betweenness centrality are provided
/// as alternative removal rules for the ablation study
/// (bench_ablation_centrality).
#pragma once

#include <vector>

#include "graph/digraph.hpp"
#include "linalg/power_method.hpp"

namespace svo::graph {

/// Weighted in-degree centrality, L1-normalized to sum 1 over vertices
/// (all-zero graphs yield the uniform vector). "Being trusted by many"
/// without trust propagation.
[[nodiscard]] std::vector<double> degree_centrality(const Digraph& g);

/// Closeness centrality on shortest paths with distance 1/weight (higher
/// trust = shorter distance), computed over *incoming* paths so that, like
/// the other measures here, it rewards being trusted. Unreachable pairs
/// contribute zero (harmonic variant: sum of 1/d). L1-normalized.
[[nodiscard]] std::vector<double> closeness_centrality(const Digraph& g);

/// Betweenness centrality (Brandes' algorithm) on the same 1/weight
/// distances. L1-normalized; all-zero results become uniform.
[[nodiscard]] std::vector<double> betweenness_centrality(const Digraph& g);

/// Eigenvector centrality of the row-normalized adjacency matrix — the
/// paper's reputation measure. Thin wrapper over linalg::power_method with
/// the trust normalization of eq. (1) applied first.
[[nodiscard]] std::vector<double> eigenvector_centrality(
    const Digraph& g, const linalg::PowerMethodOptions& opts = {});

}  // namespace svo::graph
