/// \file generators.hpp
/// Random graph generators. The paper draws its trust graphs from the
/// Erdős–Rényi G(m, p) model with m = 16, p = 0.1 (Section IV-A).
#pragma once

#include <cstddef>

#include "graph/digraph.hpp"
#include "util/rng.hpp"

namespace svo::graph {

/// Options for Erdős–Rényi generation.
struct ErdosRenyiOptions {
  /// Edge probability, in [0, 1].
  double p = 0.1;
  /// Lower/upper bound of the uniform edge-weight distribution. The paper
  /// does not pin the trust-weight distribution beyond u_ij >= 0; we use
  /// U[weight_lo, weight_hi] with defaults (0, 1].
  double weight_lo = 0.0;
  double weight_hi = 1.0;
  /// Allow self-loops (the trust model never wants them).
  bool self_loops = false;
};

/// Directed G(n, p): each ordered pair (i, j), i != j unless self_loops,
/// receives an edge independently with probability p, weighted uniformly
/// in (weight_lo, weight_hi]. Weights are strictly positive so that an
/// existing edge always carries non-zero trust (u_ij = 0 means "no edge /
/// complete distrust" in the paper's semantics).
[[nodiscard]] Digraph erdos_renyi(std::size_t n, const ErdosRenyiOptions& opts,
                                  util::Xoshiro256& rng);

/// Complete digraph with uniform random weights (ablation: dense trust).
[[nodiscard]] Digraph complete_graph(std::size_t n, double weight_lo,
                                     double weight_hi, util::Xoshiro256& rng);

}  // namespace svo::graph
