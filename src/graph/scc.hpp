/// \file scc.hpp
/// Strongly connected components (Tarjan) and reachability. Used to
/// characterize trust graphs: the power method's fixed point is unique
/// only on graphs whose positive-weight skeleton is strongly connected,
/// which is why the reputation engine offers damping (DESIGN.md §4.1).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"

namespace svo::graph {

/// Result of an SCC decomposition.
struct SccResult {
  /// component[v] = id of v's SCC, ids in [0, count). Ids are assigned in
  /// reverse topological order of the condensation (Tarjan's property).
  std::vector<std::size_t> component;
  /// Number of SCCs.
  std::size_t count = 0;
};

/// Tarjan's algorithm (iterative; safe for large graphs). Edges with zero
/// weight are treated as absent.
[[nodiscard]] SccResult strongly_connected_components(const Digraph& g);

/// True iff the whole graph forms a single SCC (and is non-empty).
[[nodiscard]] bool is_strongly_connected(const Digraph& g);

/// Set of vertices reachable from `source` (including itself) following
/// positive-weight edges.
[[nodiscard]] std::vector<bool> reachable_from(const Digraph& g,
                                               std::size_t source);

}  // namespace svo::graph
