#include "graph/centrality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace svo::graph {

namespace {

/// Normalize to sum 1; uniform on all-zero input. Empty input unchanged.
std::vector<double> normalized_or_uniform(std::vector<double> v) {
  if (v.empty()) return v;
  if (!linalg::normalize_l1(v)) {
    std::fill(v.begin(), v.end(), 1.0 / static_cast<double>(v.size()));
  }
  return v;
}

/// Dijkstra over distances 1/weight from `source`; returns distance vector
/// (infinity when unreachable) and, when sigma/pred are non-null, the
/// shortest-path counts and predecessor lists Brandes' algorithm needs,
/// plus the settle order in `order`.
void dijkstra(const Digraph& g, std::size_t source, std::vector<double>& dist,
              std::vector<double>* sigma,
              std::vector<std::vector<std::size_t>>* pred,
              std::vector<std::size_t>* order) {
  const std::size_t n = g.vertex_count();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  dist.assign(n, kInf);
  if (sigma != nullptr) sigma->assign(n, 0.0);
  if (pred != nullptr) pred->assign(n, {});
  if (order != nullptr) order->clear();
  dist[source] = 0.0;
  if (sigma != nullptr) (*sigma)[source] = 1.0;

  using Item = std::pair<double, std::size_t>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  std::vector<bool> settled(n, false);
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (settled[v]) continue;
    settled[v] = true;
    if (order != nullptr) order->push_back(v);
    for (const auto& e : g.out_edges(v)) {
      if (e.weight <= 0.0) continue;
      const double nd = d + 1.0 / e.weight;
      constexpr double kTol = 1e-12;
      if (nd < dist[e.to] - kTol) {
        dist[e.to] = nd;
        heap.push({nd, e.to});
        if (sigma != nullptr) {
          (*sigma)[e.to] = (*sigma)[v];
          (*pred)[e.to].assign(1, v);
        }
      } else if (sigma != nullptr && std::abs(nd - dist[e.to]) <= kTol) {
        (*sigma)[e.to] += (*sigma)[v];
        (*pred)[e.to].push_back(v);
      }
    }
  }
}

}  // namespace

std::vector<double> degree_centrality(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> c(n, 0.0);
  for (std::size_t v = 0; v < n; ++v) {
    for (const auto& e : g.out_edges(v)) c[e.to] += e.weight;
  }
  return normalized_or_uniform(std::move(c));
}

std::vector<double> closeness_centrality(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> c(n, 0.0);
  std::vector<double> dist;
  // Harmonic closeness of v over incoming paths = sum over sources s != v
  // of 1 / d(s, v); a single forward Dijkstra per source covers all targets.
  for (std::size_t s = 0; s < n; ++s) {
    dijkstra(g, s, dist, nullptr, nullptr, nullptr);
    for (std::size_t v = 0; v < n; ++v) {
      if (v != s && std::isfinite(dist[v]) && dist[v] > 0.0) {
        c[v] += 1.0 / dist[v];
      }
    }
  }
  return normalized_or_uniform(std::move(c));
}

std::vector<double> betweenness_centrality(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<double> bc(n, 0.0);
  std::vector<double> dist;
  std::vector<double> sigma;
  std::vector<std::vector<std::size_t>> pred;
  std::vector<std::size_t> order;
  std::vector<double> delta(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    dijkstra(g, s, dist, &sigma, &pred, &order);
    std::fill(delta.begin(), delta.end(), 0.0);
    // Accumulate dependencies in reverse settle order (Brandes).
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const std::size_t w = *it;
      for (const std::size_t v : pred[w]) {
        delta[v] += sigma[v] / sigma[w] * (1.0 + delta[w]);
      }
      if (w != s) bc[w] += delta[w];
    }
  }
  return normalized_or_uniform(std::move(bc));
}

std::vector<double> eigenvector_centrality(
    const Digraph& g, const linalg::PowerMethodOptions& opts) {
  const std::size_t n = g.vertex_count();
  linalg::Matrix a = g.adjacency_matrix();
  // Row-normalize (paper eq. (1)); zero rows stay zero and are handled as
  // dangling by the power method.
  for (std::size_t i = 0; i < n; ++i) {
    auto row = a.row(i);
    (void)linalg::normalize_l1(row);
  }
  return power_method(a, opts).eigenvector;
}

}  // namespace svo::graph
