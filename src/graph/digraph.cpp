#include "graph/digraph.hpp"

#include <algorithm>

namespace svo::graph {

void Digraph::check_vertex(std::size_t v) const {
  detail::require(v < adjacency_.size(), "Digraph: vertex out of range");
}

void Digraph::set_edge(std::size_t from, std::size_t to, double weight) {
  check_vertex(from);
  check_vertex(to);
  detail::require(weight >= 0.0, "Digraph::set_edge: negative weight");
  for (auto& e : adjacency_[from]) {
    if (e.to == to) {
      e.weight = weight;
      return;
    }
  }
  adjacency_[from].push_back(Edge{to, weight});
  ++edges_;
}

bool Digraph::remove_edge(std::size_t from, std::size_t to) {
  check_vertex(from);
  check_vertex(to);
  auto& out = adjacency_[from];
  const auto it = std::find_if(out.begin(), out.end(),
                               [to](const Edge& e) { return e.to == to; });
  if (it == out.end()) return false;
  out.erase(it);
  --edges_;
  return true;
}

std::optional<double> Digraph::edge_weight(std::size_t from,
                                           std::size_t to) const {
  check_vertex(from);
  check_vertex(to);
  for (const auto& e : adjacency_[from]) {
    if (e.to == to) return e.weight;
  }
  return std::nullopt;
}

const std::vector<Edge>& Digraph::out_edges(std::size_t v) const {
  check_vertex(v);
  return adjacency_[v];
}

std::size_t Digraph::out_degree(std::size_t v) const {
  check_vertex(v);
  return adjacency_[v].size();
}

double Digraph::out_weight(std::size_t v) const {
  check_vertex(v);
  double acc = 0.0;
  for (const auto& e : adjacency_[v]) acc += e.weight;
  return acc;
}

std::size_t Digraph::in_degree(std::size_t v) const {
  check_vertex(v);
  std::size_t deg = 0;
  for (const auto& out : adjacency_) {
    for (const auto& e : out) {
      if (e.to == v) ++deg;
    }
  }
  return deg;
}

double Digraph::in_weight(std::size_t v) const {
  check_vertex(v);
  double acc = 0.0;
  for (const auto& out : adjacency_) {
    for (const auto& e : out) {
      if (e.to == v) acc += e.weight;
    }
  }
  return acc;
}

linalg::Matrix Digraph::adjacency_matrix() const {
  const std::size_t n = vertex_count();
  linalg::Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (const auto& e : adjacency_[i]) m(i, e.to) = e.weight;
  }
  return m;
}

Digraph Digraph::induced_subgraph(const std::vector<bool>& keep,
                                  std::vector<std::size_t>* original_ids) const {
  if (keep.size() != vertex_count()) {
    throw DimensionMismatch("Digraph::induced_subgraph: keep.size() != n");
  }
  std::vector<std::size_t> new_id(vertex_count(), SIZE_MAX);
  std::vector<std::size_t> old_id;
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (keep[v]) {
      new_id[v] = old_id.size();
      old_id.push_back(v);
    }
  }
  Digraph sub(old_id.size());
  for (std::size_t v = 0; v < vertex_count(); ++v) {
    if (!keep[v]) continue;
    for (const auto& e : adjacency_[v]) {
      if (keep[e.to]) sub.set_edge(new_id[v], new_id[e.to], e.weight);
    }
  }
  if (original_ids != nullptr) *original_ids = std::move(old_id);
  return sub;
}

}  // namespace svo::graph
