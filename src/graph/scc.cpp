#include "graph/scc.hpp"

#include <algorithm>

namespace svo::graph {

SccResult strongly_connected_components(const Digraph& g) {
  const std::size_t n = g.vertex_count();
  SccResult result;
  result.component.assign(n, SIZE_MAX);

  constexpr std::size_t kUnvisited = SIZE_MAX;
  std::vector<std::size_t> index(n, kUnvisited);
  std::vector<std::size_t> lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<std::size_t> stack;
  std::size_t next_index = 0;

  // Explicit DFS frame: vertex + position within its out-edge list.
  struct Frame {
    std::size_t v;
    std::size_t edge_pos;
  };
  std::vector<Frame> call_stack;

  for (std::size_t root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;

    while (!call_stack.empty()) {
      auto& frame = call_stack.back();
      const std::size_t v = frame.v;
      const auto& out = g.out_edges(v);
      bool descended = false;
      while (frame.edge_pos < out.size()) {
        const auto& e = out[frame.edge_pos++];
        if (e.weight <= 0.0) continue;
        const std::size_t w = e.to;
        if (index[w] == kUnvisited) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          call_stack.push_back({w, 0});
          descended = true;
          break;
        }
        if (on_stack[w]) lowlink[v] = std::min(lowlink[v], index[w]);
      }
      if (descended) continue;
      // v finished: pop component if root of an SCC.
      if (lowlink[v] == index[v]) {
        for (;;) {
          const std::size_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          result.component[w] = result.count;
          if (w == v) break;
        }
        ++result.count;
      }
      call_stack.pop_back();
      if (!call_stack.empty()) {
        const std::size_t parent = call_stack.back().v;
        lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
      }
    }
  }
  return result;
}

bool is_strongly_connected(const Digraph& g) {
  if (g.vertex_count() == 0) return false;
  return strongly_connected_components(g).count == 1;
}

std::vector<bool> reachable_from(const Digraph& g, std::size_t source) {
  const std::size_t n = g.vertex_count();
  detail::require(source < n, "reachable_from: source out of range");
  std::vector<bool> seen(n, false);
  std::vector<std::size_t> frontier{source};
  seen[source] = true;
  while (!frontier.empty()) {
    const std::size_t v = frontier.back();
    frontier.pop_back();
    for (const auto& e : g.out_edges(v)) {
      if (e.weight > 0.0 && !seen[e.to]) {
        seen[e.to] = true;
        frontier.push_back(e.to);
      }
    }
  }
  return seen;
}

}  // namespace svo::graph
