#include "graph/generators.hpp"

#include <limits>

namespace svo::graph {

namespace {

/// Uniform draw in (lo, hi]: rejects 0 so edges always carry trust.
double positive_uniform(double lo, double hi, util::Xoshiro256& rng) {
  double w = rng.uniform(lo, hi);
  while (w <= lo && hi > lo) w = rng.uniform(lo, hi);
  return w > 0.0 ? w : std::numeric_limits<double>::min();
}

}  // namespace

Digraph erdos_renyi(std::size_t n, const ErdosRenyiOptions& opts,
                    util::Xoshiro256& rng) {
  detail::require(opts.p >= 0.0 && opts.p <= 1.0,
                  "erdos_renyi: p must be in [0,1]");
  detail::require(opts.weight_lo <= opts.weight_hi,
                  "erdos_renyi: weight_lo > weight_hi");
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j && !opts.self_loops) continue;
      if (rng.bernoulli(opts.p)) {
        g.set_edge(i, j, positive_uniform(opts.weight_lo, opts.weight_hi, rng));
      }
    }
  }
  return g;
}

Digraph complete_graph(std::size_t n, double weight_lo, double weight_hi,
                       util::Xoshiro256& rng) {
  detail::require(weight_lo <= weight_hi, "complete_graph: weight_lo > weight_hi");
  Digraph g(n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i == j) continue;
      g.set_edge(i, j, positive_uniform(weight_lo, weight_hi, rng));
    }
  }
  return g;
}

}  // namespace svo::graph
