/// \file instance_gen.hpp
/// Full Table I instance generation: from a trace-derived program spec to
/// the assignment instance (workloads, speeds, execution times, Braun
/// costs, deadline and payment) with the paper's feasibility guarantee
/// ("the values for deadline and payment were generated in such a way
/// that there exists a feasible solution").
#pragma once

#include <cstdint>
#include <vector>

#include "ip/assignment.hpp"
#include "trace/programs.hpp"
#include "workload/braun.hpp"
#include "workload/params.hpp"

namespace svo::workload {

/// A fully generated problem instance for one experiment run.
struct GridInstance {
  /// The assignment IP data consumed by the mechanisms.
  ip::AssignmentInstance assignment;
  /// w: GFLOP per task (n entries).
  std::vector<double> workloads;
  /// s: GFLOPS per GSP (m entries).
  std::vector<double> speeds;
  /// Program this instance realizes.
  trace::ProgramSpec program;
  /// Deadline/payment draw diagnostics.
  std::size_t feasibility_redraws = 0;
  /// True when the rejection loop had to relax the deadline beyond the
  /// Table I range to reach feasibility (rare; logged for honesty).
  bool deadline_relaxed = false;
};

/// Options for generate_instance().
struct InstanceGenOptions {
  TableIParams params;
  BraunOptions braun;
  /// Redraws of (deadline, payment) before the deadline range is relaxed.
  std::size_t max_feasibility_redraws = 60;
  /// Multiplier applied to the deadline per relaxation step (see above).
  double relax_step = 1.25;
};

/// Generate speeds: gflops_per_processor * U_int[speed_lo, speed_hi]
/// processors per GSP.
[[nodiscard]] std::vector<double> generate_speeds(const TableIParams& params,
                                                  util::Xoshiro256& rng);

/// Generate task workloads (GFLOP) for a program: job runtime converted
/// to operations at the Atlas per-processor peak, scaled per task by
/// U[workload_fraction_lo, workload_fraction_hi].
[[nodiscard]] std::vector<double> generate_workloads(
    const trace::ProgramSpec& program, const TableIParams& params,
    util::Xoshiro256& rng);

/// Execution-time matrix t(g, t) = w(t) / s(g). The result is consistent
/// in the Braun sense: a GSP faster on one task is faster on all.
[[nodiscard]] linalg::Matrix execution_times(
    const std::vector<double>& speeds, const std::vector<double>& workloads);

/// Generate a complete instance for `program`. Deterministic in `rng`.
/// The (deadline, payment) pair is rejection-sampled within the Table I
/// ranges until a greedy probe finds a feasible assignment; if
/// max_feasibility_redraws is exhausted, the deadline range is relaxed
/// multiplicatively (flagged in the result) so callers always receive a
/// feasible instance, exactly as the paper promises.
[[nodiscard]] GridInstance generate_instance(const trace::ProgramSpec& program,
                                             const InstanceGenOptions& opts,
                                             util::Xoshiro256& rng);

}  // namespace svo::workload
