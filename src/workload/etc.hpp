/// \file etc.hpp
/// Expected-time-to-compute (ETC) matrix families after Braun et al.
/// [29] — the heterogeneous-computing benchmark taxonomy the paper's
/// instance generator descends from:
///
///   consistent:      if machine a beats machine b on one task it beats
///                    it on all (the paper's own time matrix, t = w/s,
///                    is consistent by construction);
///   semi-consistent: a consistent sub-block embedded in an otherwise
///                    inconsistent matrix (even rows/columns sorted);
///   inconsistent:    raw range-based draws — machine-task affinities.
///
/// The paper only evaluates the consistent case; the other two families
/// let applications (and the heterogeneity ablation) model grids with
/// specialized hardware where "fastest" depends on the task.
#pragma once

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace svo::workload {

/// ETC structure per Braun's taxonomy.
enum class EtcConsistency {
  Consistent,
  SemiConsistent,
  Inconsistent,
};

/// Heterogeneity ranges of the range-based generator.
struct EtcOptions {
  /// Task heterogeneity: baseline per task drawn from U[1, task_hetero].
  double task_heterogeneity = 3000.0;
  /// Machine heterogeneity: multiplier per (task, machine) from
  /// U[1, machine_hetero].
  double machine_heterogeneity = 100.0;
  EtcConsistency consistency = EtcConsistency::Inconsistent;
};

/// Generate a machines x tasks ETC matrix with the range-based method:
/// etc(m, t) = baseline(t) * U[1, machine_hetero], then sorted per the
/// consistency family (each task row sorted across machines for
/// Consistent; even-indexed tasks sorted for SemiConsistent).
[[nodiscard]] linalg::Matrix generate_etc(std::size_t machines,
                                          std::size_t tasks,
                                          const EtcOptions& opts,
                                          util::Xoshiro256& rng);

/// Braun consistency check: true iff for every machine pair (a, b),
/// a is uniformly faster-or-equal or uniformly slower-or-equal.
[[nodiscard]] bool is_consistent_etc(const linalg::Matrix& etc);

}  // namespace svo::workload
