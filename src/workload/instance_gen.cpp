#include "workload/instance_gen.hpp"

#include <algorithm>

#include "ip/greedy.hpp"

namespace svo::workload {

std::vector<double> generate_speeds(const TableIParams& params,
                                    util::Xoshiro256& rng) {
  detail::require(params.num_gsps > 0, "generate_speeds: num_gsps == 0");
  detail::require(params.speed_lo > 0 && params.speed_lo <= params.speed_hi,
                  "generate_speeds: bad processor-count range");
  std::vector<double> speeds(params.num_gsps);
  for (double& s : speeds) {
    const auto procs = rng.uniform_int(params.speed_lo, params.speed_hi);
    s = params.gflops_per_processor * static_cast<double>(procs);
  }
  return speeds;
}

std::vector<double> generate_workloads(const trace::ProgramSpec& program,
                                       const TableIParams& params,
                                       util::Xoshiro256& rng) {
  detail::require(program.num_tasks > 0, "generate_workloads: empty program");
  detail::require(program.mean_task_runtime > 0.0,
                  "generate_workloads: non-positive runtime");
  // Maximum operations a task can represent: the job's CPU seconds at the
  // per-processor peak. Each task draws a fraction of it (Section IV-A).
  const double max_gflop =
      program.mean_task_runtime * params.gflops_per_processor;
  std::vector<double> w(program.num_tasks);
  for (double& x : w) {
    x = max_gflop *
        rng.uniform(params.workload_fraction_lo, params.workload_fraction_hi);
  }
  return w;
}

linalg::Matrix execution_times(const std::vector<double>& speeds,
                               const std::vector<double>& workloads) {
  detail::require(!speeds.empty() && !workloads.empty(),
                  "execution_times: empty inputs");
  linalg::Matrix t(speeds.size(), workloads.size());
  for (std::size_t g = 0; g < speeds.size(); ++g) {
    detail::require(speeds[g] > 0.0, "execution_times: non-positive speed");
    const double inv = 1.0 / speeds[g];
    for (std::size_t j = 0; j < workloads.size(); ++j) {
      detail::require(workloads[j] > 0.0,
                      "execution_times: non-positive workload");
      t(g, j) = workloads[j] * inv;
    }
  }
  return t;
}

namespace {

/// Fast feasibility probe: can *some* assignment satisfy (11)-(13) within
/// payment (10)? Uses greedy construction (both orderings) + a short
/// local search; sound "yes", heuristic "no".
bool probe_feasible(const ip::AssignmentInstance& inst) {
  ip::GreedyOptions opts;
  opts.local_search.max_move_passes = 6;
  opts.local_search.max_swap_passes = 1;
  opts.local_search.swap_sample_per_task = 4;
  const ip::GreedyAssignmentSolver solver(opts);
  return solver.solve(inst).has_assignment();
}

}  // namespace

GridInstance generate_instance(const trace::ProgramSpec& program,
                               const InstanceGenOptions& opts,
                               util::Xoshiro256& rng) {
  const TableIParams& p = opts.params;
  GridInstance gi;
  gi.program = program;
  gi.speeds = generate_speeds(p, rng);
  gi.workloads = generate_workloads(program, p, rng);

  gi.assignment.time = execution_times(gi.speeds, gi.workloads);
  gi.assignment.cost =
      generate_braun_costs(p.num_gsps, gi.workloads, opts.braun, rng);
  gi.assignment.require_all_gsps_used = true;

  const double n = static_cast<double>(program.num_tasks);
  const double runtime = program.mean_task_runtime;
  double relax = 1.0;
  for (;;) {
    const double deadline_factor =
        rng.uniform(p.deadline_factor_lo, p.deadline_factor_hi);
    const double payment_factor =
        rng.uniform(p.payment_factor_lo, p.payment_factor_hi);
    // `relax` stays 1.0 within the Table I ranges; it grows (and is
    // flagged) only if the ranges themselves cannot yield feasibility.
    gi.assignment.deadline = relax * deadline_factor * runtime * n / 1000.0;
    gi.assignment.payment = relax * payment_factor * p.max_cost() * n;
    if (probe_feasible(gi.assignment)) break;
    ++gi.feasibility_redraws;
    if (gi.feasibility_redraws % opts.max_feasibility_redraws == 0) {
      relax *= opts.relax_step;
      gi.deadline_relaxed = true;
    }
  }
  return gi;
}

}  // namespace svo::workload
