/// \file braun.hpp
/// Cost-matrix generation after Braun et al. [29]: a baseline value per
/// task in U[1, phi_b], multiplied per GSP by a row multiplier in
/// U[1, phi_r]. The paper additionally requires costs to be monotone in
/// task workload on *every* GSP ("a task with the smallest workload has
/// the cheapest cost on all GSPs"); see WorkloadMonotonicity.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace svo::workload {

/// How strictly cost must track workload (DESIGN.md §2, workload row).
enum class WorkloadMonotonicity {
  /// Sort each GSP's generated cost row so that cost rank == workload
  /// rank: w(Tj) > w(Tq) implies c(Tj,G) >= c(Tq,G) on every GSP, exactly
  /// as the paper's text states. Preserves each row's value multiset.
  Strict,
  /// Only the baseline vector is aligned with workload; row multipliers
  /// may locally invert the order (a looser reading of the paper).
  BaselineOnly,
  /// Raw Braun generation, no workload coupling (ablation).
  None,
};

/// Options for generate_braun_costs().
struct BraunOptions {
  double phi_b = 100.0;
  double phi_r = 10.0;
  WorkloadMonotonicity monotonicity = WorkloadMonotonicity::Strict;
};

/// Generate a num_gsps x num_tasks cost matrix. `workloads` (one entry
/// per task) drives the monotone coupling; it must be non-empty and match
/// the task count. Every entry lies in [1, phi_b * phi_r].
[[nodiscard]] linalg::Matrix generate_braun_costs(
    std::size_t num_gsps, const std::vector<double>& workloads,
    const BraunOptions& opts, util::Xoshiro256& rng);

}  // namespace svo::workload
