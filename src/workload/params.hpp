/// \file params.hpp
/// Table I of the paper: every simulation parameter, with the paper's
/// default values. One struct so experiments can state deviations
/// explicitly.
#pragma once

#include <cstddef>

namespace svo::workload {

/// Simulation parameters (paper Table I).
struct TableIParams {
  /// m: number of GSPs.
  std::size_t num_gsps = 16;
  /// Peak performance of one Atlas processor, GFLOPS.
  double gflops_per_processor = 4.91;
  /// GSP speed = gflops_per_processor * U_int[speed_lo, speed_hi]
  /// (number of processors a GSP owns).
  int speed_lo = 16;
  int speed_hi = 128;
  /// Task workload = job_runtime * gflops_per_processor * U[wl_lo, wl_hi].
  double workload_fraction_lo = 0.5;
  double workload_fraction_hi = 1.0;
  /// phi_b: maximum baseline value of the Braun cost generator.
  double phi_b = 100.0;
  /// phi_r: maximum row multiplier of the Braun cost generator.
  double phi_r = 10.0;
  /// Deadline = U[deadline_lo, deadline_hi] * Runtime * n / 1000 seconds.
  double deadline_factor_lo = 0.3;
  double deadline_factor_hi = 2.0;
  /// Payment = U[payment_lo, payment_hi] * max_cost * n units.
  double payment_factor_lo = 0.2;
  double payment_factor_hi = 0.4;
  /// Minimum job runtime for program extraction, seconds.
  double min_job_runtime = 7200.0;
  /// Erdos-Renyi edge probability of the trust graph.
  double trust_edge_probability = 0.1;

  /// max_c = phi_b * phi_r (upper end of the cost range).
  [[nodiscard]] double max_cost() const noexcept { return phi_b * phi_r; }
};

}  // namespace svo::workload
