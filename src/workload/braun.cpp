#include "workload/braun.hpp"

#include <algorithm>
#include <numeric>

namespace svo::workload {

linalg::Matrix generate_braun_costs(std::size_t num_gsps,
                                    const std::vector<double>& workloads,
                                    const BraunOptions& opts,
                                    util::Xoshiro256& rng) {
  detail::require(num_gsps > 0, "generate_braun_costs: num_gsps == 0");
  detail::require(!workloads.empty(), "generate_braun_costs: no workloads");
  detail::require(opts.phi_b >= 1.0 && opts.phi_r >= 1.0,
                  "generate_braun_costs: phi_b/phi_r must be >= 1");
  const std::size_t n = workloads.size();

  // Workload rank of each task: rank[t] = position of t when tasks are
  // sorted by ascending workload (stable on ties).
  std::vector<std::size_t> by_workload(n);
  std::iota(by_workload.begin(), by_workload.end(), 0);
  std::stable_sort(by_workload.begin(), by_workload.end(),
                   [&](std::size_t a, std::size_t b) {
                     return workloads[a] < workloads[b];
                   });

  // Baseline vector, one value per task, U[1, phi_b].
  std::vector<double> baseline(n);
  for (double& b : baseline) b = rng.uniform(1.0, opts.phi_b);
  if (opts.monotonicity != WorkloadMonotonicity::None) {
    // Align the baseline with workload: smallest workload gets the
    // smallest baseline value.
    std::vector<double> sorted_b = baseline;
    std::sort(sorted_b.begin(), sorted_b.end());
    for (std::size_t r = 0; r < n; ++r) baseline[by_workload[r]] = sorted_b[r];
  }

  linalg::Matrix cost(num_gsps, n);
  for (std::size_t g = 0; g < num_gsps; ++g) {
    for (std::size_t t = 0; t < n; ++t) {
      cost(g, t) = baseline[t] * rng.uniform(1.0, opts.phi_r);
    }
    if (opts.monotonicity == WorkloadMonotonicity::Strict) {
      // Re-rank this GSP's costs so cost order == workload order while
      // keeping the row's multiset of values (paper: smallest-workload
      // task is cheapest on every GSP).
      std::vector<double> row(n);
      for (std::size_t t = 0; t < n; ++t) row[t] = cost(g, t);
      std::sort(row.begin(), row.end());
      for (std::size_t r = 0; r < n; ++r) cost(g, by_workload[r]) = row[r];
    }
  }
  return cost;
}

}  // namespace svo::workload
