#include "workload/etc.hpp"

#include <algorithm>
#include <vector>

namespace svo::workload {

linalg::Matrix generate_etc(std::size_t machines, std::size_t tasks,
                            const EtcOptions& opts, util::Xoshiro256& rng) {
  detail::require(machines > 0 && tasks > 0, "generate_etc: empty matrix");
  detail::require(opts.task_heterogeneity >= 1.0 &&
                      opts.machine_heterogeneity >= 1.0,
                  "generate_etc: heterogeneity ranges must be >= 1");

  // Range-based generation: one baseline per task, one multiplier per
  // cell. Stored machines x tasks to match the rest of the codebase
  // (Braun writes tasks x machines; the consistency semantics are about
  // machine orderings either way).
  linalg::Matrix etc(machines, tasks);
  for (std::size_t t = 0; t < tasks; ++t) {
    const double baseline = rng.uniform(1.0, opts.task_heterogeneity);
    for (std::size_t m = 0; m < machines; ++m) {
      etc(m, t) = baseline * rng.uniform(1.0, opts.machine_heterogeneity);
    }
  }
  const auto sort_task_column = [&](std::size_t t) {
    std::vector<double> col(machines);
    for (std::size_t m = 0; m < machines; ++m) col[m] = etc(m, t);
    std::sort(col.begin(), col.end());
    for (std::size_t m = 0; m < machines; ++m) etc(m, t) = col[m];
  };
  switch (opts.consistency) {
    case EtcConsistency::Consistent:
      // Sorting every task's column by the same machine order makes
      // machine 0 uniformly fastest, machine k-1 uniformly slowest.
      for (std::size_t t = 0; t < tasks; ++t) sort_task_column(t);
      break;
    case EtcConsistency::SemiConsistent:
      for (std::size_t t = 0; t < tasks; t += 2) sort_task_column(t);
      break;
    case EtcConsistency::Inconsistent:
      break;
  }
  return etc;
}

bool is_consistent_etc(const linalg::Matrix& etc) {
  const std::size_t machines = etc.rows();
  const std::size_t tasks = etc.cols();
  for (std::size_t a = 0; a < machines; ++a) {
    for (std::size_t b = a + 1; b < machines; ++b) {
      bool a_faster_somewhere = false;
      bool b_faster_somewhere = false;
      for (std::size_t t = 0; t < tasks; ++t) {
        if (etc(a, t) < etc(b, t)) a_faster_somewhere = true;
        if (etc(b, t) < etc(a, t)) b_faster_somewhere = true;
      }
      if (a_faster_somewhere && b_faster_somewhere) return false;
    }
  }
  return true;
}

}  // namespace svo::workload
