#include "linalg/power_method.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"

namespace svo::linalg {

namespace {

/// One application of the (dangling-patched, damped) transposed operator:
///   y_j = (1-d) * [ sum_i a_ij x_i + dangling_mass / n ] + d / n
/// where dangling_mass = sum over zero-rows i of x_i. With row-stochastic
/// a and an L1-normalized x this keeps y L1-normalized.
void apply_operator(const Matrix& a, const std::vector<bool>& dangling,
                    double damping, std::span<const double> x,
                    std::vector<double>& y, std::size_t threads) {
  const std::size_t n = a.rows();
  std::fill(y.begin(), y.end(), 0.0);
  double dangling_mass = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (dangling[i]) dangling_mass += x[i];
  }
  if (threads > 1 && n >= 256) {
    // Column-block parallel A^T x: each worker owns a disjoint slice of y.
    const std::size_t block = (n + threads - 1) / threads;
    svo::util::parallel_for(
        0, threads,
        [&](std::size_t t) {
          const std::size_t j0 = t * block;
          const std::size_t j1 = std::min(j0 + block, n);
          for (std::size_t i = 0; i < n; ++i) {
            const double xi = x[i];
            if (xi == 0.0 || dangling[i]) continue;
            const auto row = a.row(i);
            for (std::size_t j = j0; j < j1; ++j) y[j] += xi * row[j];
          }
        },
        1);
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      const double xi = x[i];
      if (xi == 0.0 || dangling[i]) continue;
      const auto row = a.row(i);
      for (std::size_t j = 0; j < n; ++j) y[j] += xi * row[j];
    }
  }
  // y currently holds sum_i a_ij x_i; apply damping and spread the
  // dangling mass uniformly.
  const double base =
      (1.0 - damping) * dangling_mass / static_cast<double>(n) +
      damping / static_cast<double>(n);
  for (std::size_t j = 0; j < n; ++j) y[j] = (1.0 - damping) * y[j] + base;
}

PowerMethodResult power_method_impl(const Matrix& a,
                                    const PowerMethodOptions& opts) {
  detail::require(a.rows() == a.cols(), "power_method: matrix must be square");
  opts.validate();

  PowerMethodResult result;
  const std::size_t n = a.rows();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  std::vector<bool> dangling(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = a(i, j);
      detail::require(v >= 0.0, "power_method: matrix must be non-negative");
      detail::require(std::isfinite(v), "power_method: matrix must be finite");
      row_sum += v;
    }
    dangling[i] = (row_sum <= 0.0);
  }

  // Paper Algorithm 2 line 3: start uniform, x^0_i = 1/|C|.
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> y(n, 0.0);

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    apply_operator(a, dangling, opts.damping, x, y, opts.threads);
    // Rayleigh-style eigenvalue estimate before normalization: with x
    // L1-normalized, ||y||_1 approximates the dominant eigenvalue of the
    // damped operator (exactly 1 for a patched stochastic matrix).
    result.eigenvalue = norm_l1(y);
    if (!normalize_l1(y)) {
      // Operator annihilated x (possible only with damping == 0 on a
      // nilpotent-like trust graph): fall back to uniform, report
      // non-convergence.
      std::fill(y.begin(), y.end(), 1.0 / static_cast<double>(n));
      result.iterations = it + 1;
      result.converged = false;
      result.eigenvector = std::move(y);
      return result;
    }
    const double delta = distance_l1(y, x);
    x.swap(y);
    result.iterations = it + 1;
    if (delta < opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.eigenvector = std::move(x);
  return result;
}

}  // namespace

void PowerMethodOptions::validate() const {
  detail::require(std::isfinite(epsilon) && epsilon > 0.0,
                  "PowerMethodOptions: epsilon must be finite and > 0");
  detail::require(max_iterations > 0,
                  "PowerMethodOptions: max_iterations must be > 0");
  detail::require(std::isfinite(damping) && damping >= 0.0 && damping < 1.0,
                  "PowerMethodOptions: damping must be finite and in [0,1)");
  detail::require(threads >= 1, "PowerMethodOptions: threads must be >= 1");
}

PowerMethodResult power_method(const Matrix& a, const PowerMethodOptions& opts) {
  obs::Span span("linalg.power_method", "linalg");
  PowerMethodResult result = power_method_impl(a, opts);
  if (span.active()) {
    span.arg("n", static_cast<double>(a.rows()));
    span.arg("iterations", static_cast<double>(result.iterations));
    span.arg("converged", result.converged ? 1.0 : 0.0);
    span.arg("eigenvalue", result.eigenvalue);
    obs::MetricRegistry& m = obs::Recorder::instance().metrics();
    m.counter("linalg.power_method.calls").add();
    m.counter("linalg.power_method.iterations").add(result.iterations);
    if (!result.converged) m.counter("linalg.power_method.nonconverged").add();
    m.histogram("linalg.power_method.iters_per_call")
        .observe(static_cast<double>(result.iterations));
  }
  return result;
}

}  // namespace svo::linalg
