#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace svo::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& data) {
  if (data.empty()) return {};
  Matrix m(data.size(), data.front().size());
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data[i].size() != m.cols_) {
      throw DimensionMismatch("Matrix::from_rows: ragged rows");
    }
    for (std::size_t j = 0; j < m.cols_; ++j) m(i, j) = data[i][j];
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t i, std::size_t j) {
  detail::require(i < rows_ && j < cols_, "Matrix::at: index out of range");
  return (*this)(i, j);
}

double Matrix::at(std::size_t i, std::size_t j) const {
  detail::require(i < rows_ && j < cols_, "Matrix::at: index out of range");
  return (*this)(i, j);
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

std::vector<double> Matrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw DimensionMismatch("Matrix::multiply: size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* r = data_.data() + i * cols_;
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += r[j] * x[j];
    y[i] = acc;
  }
  return y;
}

std::vector<double> Matrix::multiply_transposed(
    std::span<const double> x) const {
  if (x.size() != rows_) {
    throw DimensionMismatch("Matrix::multiply_transposed: size mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  // Row-major friendly order: accumulate row i scaled by x[i].
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    const double* r = data_.data() + i * cols_;
    for (std::size_t j = 0; j < cols_; ++j) y[j] += xi * r[j];
  }
  return y;
}

double Matrix::frobenius_norm() const noexcept {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double norm_l1(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += std::abs(x);
  return acc;
}

double norm_l2(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double norm_linf(std::span<const double> v) noexcept {
  double acc = 0.0;
  for (double x : v) acc = std::max(acc, std::abs(x));
  return acc;
}

double dot(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) throw DimensionMismatch("dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double distance_l1(std::span<const double> a, std::span<const double> b) {
  if (a.size() != b.size()) {
    throw DimensionMismatch("distance_l1: size mismatch");
  }
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

bool normalize_l1(std::span<double> v) noexcept {
  const double s = norm_l1(v);
  if (s <= 0.0) return false;
  for (double& x : v) x /= s;
  return true;
}

double trimmed_sum(std::span<double> v, double trim_fraction) {
  detail::require(trim_fraction >= 0.0 && trim_fraction < 0.5,
                  "trimmed_sum: trim_fraction must be in [0, 0.5)");
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  const std::size_t t =
      static_cast<std::size_t>(trim_fraction * static_cast<double>(n));
  std::sort(v.begin(), v.end());
  double acc = 0.0;
  if (2 * t >= n) {
    for (double x : v) acc += x;
    return acc;
  }
  for (std::size_t i = t; i < n - t; ++i) acc += v[i];
  return acc * static_cast<double>(n) / static_cast<double>(n - 2 * t);
}

double median_of_means_sum(std::span<double> v, std::size_t buckets) {
  detail::require(buckets >= 1, "median_of_means_sum: buckets must be >= 1");
  const std::size_t n = v.size();
  if (n == 0) return 0.0;
  const std::size_t b = std::min(buckets, n);
  std::vector<double> means(b, 0.0);
  std::vector<std::size_t> counts(b, 0);
  for (std::size_t i = 0; i < n; ++i) {
    means[i % b] += v[i];
    ++counts[i % b];
  }
  for (std::size_t k = 0; k < b; ++k) {
    means[k] /= static_cast<double>(counts[k]);
  }
  std::sort(means.begin(), means.end());
  const double median = b % 2 == 1
                            ? means[b / 2]
                            : 0.5 * (means[b / 2 - 1] + means[b / 2]);
  return median * static_cast<double>(n);
}

}  // namespace svo::linalg
