/// \file sparse.hpp
/// Compressed-sparse-row (CSR) matrix and the sparse power iteration the
/// internet-scale reputation engine runs on (DESIGN.md §4i).
///
/// The paper's trust matrices are 16x16 and dense; the ROADMAP regime is
/// 100k-1M participants whose trust graphs are overwhelmingly sparse
/// (average degree tens, not tens of thousands). This module supplies:
///
///  - `SparseMatrix`: immutable CSR with column-sorted rows, built from
///    triplets; O(nnz) storage, O(row) iteration, O(log deg) lookup.
///  - `sparse_power_method`: the sparse twin of linalg::power_method.
///    It applies the transposed operator in *gather* form — output j is
///    the i-ascending dot of A^T's row j with x — which makes the serial
///    and pooled paths bit-identical to each other AND to the dense
///    engine's summation order. Dense-vs-sparse equivalence is therefore
///    exact, not approximate (tests/trust/sparse_reputation_test.cpp),
///    and the pooled path is deterministic for every thread count.
///  - Incremental re-convergence: a caller holding the previous round's
///    eigenvector passes it as `warm_start`; the iteration starts there
///    instead of uniform and converges in a fraction of the cold
///    iterations when few trust edges changed (bench_trust_scale).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "linalg/matrix.hpp"
#include "linalg/power_method.hpp"

namespace svo::linalg {

/// One explicit entry of a sparse matrix under construction.
struct Triplet {
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

/// Immutable CSR matrix. Rows store column-sorted entries; exact zeros
/// are dropped at build time, so "stored entry" always means "structural
/// nonzero" (the dangling-row test of the power method relies on this).
class SparseMatrix {
 public:
  /// Empty 0x0 matrix.
  SparseMatrix() = default;

  /// Build from triplets (any order; duplicates of the same (row, col)
  /// are summed; entries that are — or sum to — exactly 0 are dropped).
  /// Throws InvalidArgument on out-of-range indices or non-finite values.
  [[nodiscard]] static SparseMatrix from_triplets(std::size_t rows,
                                                  std::size_t cols,
                                                  std::vector<Triplet> triplets);

  /// CSR view of a dense matrix (entries exactly 0 dropped).
  [[nodiscard]] static SparseMatrix from_dense(const Matrix& dense);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  /// Stored (structural nonzero) entries.
  [[nodiscard]] std::size_t nnz() const noexcept { return col_.size(); }
  /// nnz / (rows * cols); 0 for an empty matrix.
  [[nodiscard]] double fill_ratio() const noexcept;

  /// One row's entries: parallel spans of column indices (ascending) and
  /// values.
  struct RowView {
    std::span<const std::size_t> cols;
    std::span<const double> values;
    [[nodiscard]] std::size_t size() const noexcept { return cols.size(); }
    [[nodiscard]] bool empty() const noexcept { return cols.empty(); }
  };

  /// Row i's stored entries. Throws InvalidArgument when out of range.
  [[nodiscard]] RowView row(std::size_t i) const;

  /// Entry (i, j); 0 when not stored. O(log deg(i)).
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// Dense copy (for tests and small-k interop).
  [[nodiscard]] Matrix to_dense() const;

  /// Transposed copy (CSC of *this viewed as CSR): row j of the result
  /// holds the incoming entries of column j, sorted by source row — the
  /// gather layout both the sparse power method and the robust
  /// aggregation consume.
  [[nodiscard]] SparseMatrix transposed() const;

  /// y = M x. Throws DimensionMismatch on size mismatch.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// y = M^T x (no transposed copy materialized; scatter form, serial).
  [[nodiscard]] std::vector<double> multiply_transposed(
      std::span<const double> x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  /// rows_ + 1 offsets into col_/val_ (empty matrix: single 0).
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_;
  std::vector<double> val_;
};

/// Sparse twin of linalg::power_method: dominant *left* eigenvector of
/// `a` by normalized power iteration, with the same dangling-row and
/// damping conventions. Bit-identical to the dense engine on the same
/// matrix (see the file comment), at any `opts.threads`.
///
/// `warm_start`, when non-empty, must have size a.rows(), be finite and
/// non-negative with positive sum; it replaces the uniform start vector
/// (after L1 normalization). Warm and cold runs converge to the same
/// fixed point within `opts.epsilon` — the *iterate path* differs, so a
/// warm result matches a cold one only up to the documented tolerance
/// (DESIGN.md §4i); callers needing bit-identical replays must either
/// both warm-start or both cold-start.
[[nodiscard]] PowerMethodResult sparse_power_method(
    const SparseMatrix& a, const PowerMethodOptions& opts = {},
    std::span<const double> warm_start = {});

}  // namespace svo::linalg
