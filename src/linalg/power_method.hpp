/// \file power_method.hpp
/// Power iteration for the dominant left eigenvector of a trust matrix
/// (paper Algorithm 2, eqs. (2)-(6)).
///
/// The paper iterates x <- A^T x until ||x^{q+1} - x^q|| < eps. For a
/// substochastic A (GSPs with no out-edges make rows sum to < 1) the raw
/// iteration decays to zero, so — as standard for the power method — we
/// L1-normalize each iterate; this changes only the scale of the fixed
/// point, never its direction, and the mechanism consumes only relative
/// reputations. See DESIGN.md §4.1.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace svo::linalg {

/// Options controlling the power iteration.
struct PowerMethodOptions {
  /// Convergence threshold on the L1 distance between successive
  /// (normalized) iterates. Paper calls this epsilon.
  double epsilon = 1e-9;
  /// Hard iteration cap; hitting it sets `converged = false` in the result.
  std::size_t max_iterations = 10'000;
  /// PageRank-style damping: iterate x <- (1-d) * A^T x + d * u where u is
  /// uniform. d = 0 reproduces the paper's bare iteration; the default
  /// 0.15 guarantees convergence on reducible/periodic trust graphs.
  double damping = 0.15;
  /// Number of pool threads to use for the mat-vec when the matrix is
  /// large; 1 = serial (default; trust graphs in the paper are 16x16).
  std::size_t threads = 1;

  /// Throws InvalidArgument unless epsilon is finite and > 0,
  /// max_iterations > 0, damping is finite in [0, 1) and threads >= 1 —
  /// the ReputationOptions/ServiceOptions validation precedent. Called by
  /// every engine consuming these options (dense, sparse, robust).
  void validate() const;
};

/// Result of a power iteration run.
struct PowerMethodResult {
  /// Dominant left eigenvector, L1-normalized to sum 1. All entries are
  /// >= 0 when the input matrix is non-negative.
  std::vector<double> eigenvector;
  /// Rayleigh-quotient estimate of the dominant eigenvalue of A^T
  /// (of the damped operator when damping > 0).
  double eigenvalue = 0.0;
  /// Iterations actually performed.
  std::size_t iterations = 0;
  /// Whether the epsilon criterion was met before the iteration cap.
  bool converged = false;
  /// Whether the run started from a caller-provided previous eigenvector
  /// instead of the uniform vector (sparse_power_method only).
  bool warm_started = false;
};

/// Compute the dominant *left* eigenvector of `a` (i.e. dominant right
/// eigenvector of A^T) by normalized power iteration.
///
/// Preconditions: `a` is square and non-negative; throws InvalidArgument
/// otherwise. Rows that are entirely zero ("dangling" GSPs that trust
/// nobody) are treated as uniform over all nodes, the PageRank convention.
/// An empty matrix yields an empty result with converged = true.
[[nodiscard]] PowerMethodResult power_method(const Matrix& a,
                                             const PowerMethodOptions& opts = {});

}  // namespace svo::linalg
