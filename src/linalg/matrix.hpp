/// \file matrix.hpp
/// Dense row-major matrix of doubles plus the vector kernels the
/// reputation engine and LP solver need. Deliberately minimal: this is a
/// simulation substrate, not a BLAS replacement.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace svo::linalg {

/// Dense row-major matrix.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Build from nested initializer-style data; every row must have the
  /// same length. Throws DimensionMismatch otherwise.
  static Matrix from_rows(const std::vector<std::vector<double>>& data);

  /// n x n identity.
  static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  /// Unchecked element access (hot paths); bounds are asserted in debug.
  [[nodiscard]] double& operator()(std::size_t i, std::size_t j) noexcept {
    return data_[i * cols_ + j];
  }
  [[nodiscard]] double operator()(std::size_t i, std::size_t j) const noexcept {
    return data_[i * cols_ + j];
  }

  /// Checked element access. Throws InvalidArgument when out of range.
  [[nodiscard]] double& at(std::size_t i, std::size_t j);
  [[nodiscard]] double at(std::size_t i, std::size_t j) const;

  /// View of row i.
  [[nodiscard]] std::span<double> row(std::size_t i) noexcept {
    return {data_.data() + i * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t i) const noexcept {
    return {data_.data() + i * cols_, cols_};
  }

  /// Transposed copy.
  [[nodiscard]] Matrix transposed() const;

  /// y = M x. Throws DimensionMismatch on size mismatch.
  [[nodiscard]] std::vector<double> multiply(std::span<const double> x) const;

  /// y = M^T x (no transposed copy materialized).
  [[nodiscard]] std::vector<double> multiply_transposed(
      std::span<const double> x) const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Raw storage (row-major).
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Sum of |v_i| (L1 norm).
[[nodiscard]] double norm_l1(std::span<const double> v) noexcept;
/// Euclidean norm.
[[nodiscard]] double norm_l2(std::span<const double> v) noexcept;
/// Max |v_i| norm.
[[nodiscard]] double norm_linf(std::span<const double> v) noexcept;
/// Dot product. Throws DimensionMismatch on size mismatch.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);
/// L1 distance between two equal-length vectors.
[[nodiscard]] double distance_l1(std::span<const double> a,
                                 std::span<const double> b);
/// Scale v in place so that its entries sum to 1 (L1 normalization).
/// A zero vector is left unchanged and reported by returning false.
bool normalize_l1(std::span<double> v) noexcept;

/// Outlier-resistant sum estimators for the robust reputation pipeline
/// (trust/robust.hpp): both estimate sum(v) while bounding the influence
/// any small subset of entries can exert.
///
/// Trimmed sum: sort v in place, drop floor(trim_fraction * n) entries
/// from each end, and rescale the middle sum by n / (n - 2t) so the
/// estimate stays comparable to a plain sum. trim_fraction must be in
/// [0, 0.5); when trimming would leave nothing, the untrimmed sum is
/// returned. Empty v yields 0.
[[nodiscard]] double trimmed_sum(std::span<double> v, double trim_fraction);

/// Median-of-means sum: deal entries round-robin (in index order) into
/// `buckets` groups, take each group's mean, and return median(means) * n.
/// buckets must be >= 1; it is clamped to n. Reorders v in place (the
/// bucket means are sorted for the median). Empty v yields 0.
[[nodiscard]] double median_of_means_sum(std::span<double> v,
                                         std::size_t buckets);

}  // namespace svo::linalg
