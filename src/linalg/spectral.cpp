#include "linalg/spectral.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svo::linalg {

GershgorinBounds gershgorin_bounds(const Matrix& a) {
  detail::require(a.rows() == a.cols(),
                  "gershgorin_bounds: matrix must be square");
  GershgorinBounds b;
  if (a.rows() == 0) return b;
  b.lower = std::numeric_limits<double>::infinity();
  b.upper = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    double radius = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) {
      if (j != i) radius += std::abs(a(i, j));
    }
    const double center = a(i, i);
    b.lower = std::min(b.lower, center - radius);
    b.upper = std::max(b.upper, center + radius);
    b.spectral_radius_bound =
        std::max(b.spectral_radius_bound, std::abs(center) + radius);
  }
  return b;
}

double left_eigenpair_residual(const Matrix& a, std::span<const double> x,
                               double lambda) {
  detail::require(a.rows() == a.cols(),
                  "left_eigenpair_residual: matrix must be square");
  if (x.size() != a.rows()) {
    throw DimensionMismatch("left_eigenpair_residual: size mismatch");
  }
  const std::vector<double> ax = a.multiply_transposed(x);
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += std::abs(ax[i] - lambda * x[i]);
  }
  return acc;
}

}  // namespace svo::linalg
