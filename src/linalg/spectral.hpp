/// \file spectral.hpp
/// Spectral diagnostics for the reputation engine: Gershgorin disc
/// bounds on eigenvalue magnitudes (a priori convergence sanity) and
/// eigenpair residuals (a posteriori verification that the power method
/// returned a genuine eigenvector).
#pragma once

#include "linalg/matrix.hpp"

namespace svo::linalg {

/// Interval guaranteed to contain every eigenvalue's real part by the
/// Gershgorin circle theorem (discs centered at a_ii with radius the
/// off-diagonal absolute row sum).
struct GershgorinBounds {
  double lower = 0.0;  ///< min over rows of (a_ii - radius_i)
  double upper = 0.0;  ///< max over rows of (a_ii + radius_i)
  /// Upper bound on the spectral radius: max |a_ii| + radius_i.
  double spectral_radius_bound = 0.0;
};

/// Compute Gershgorin bounds for a square matrix. Throws InvalidArgument
/// on non-square input; an empty matrix yields all-zero bounds.
[[nodiscard]] GershgorinBounds gershgorin_bounds(const Matrix& a);

/// Residual ||A^T x - lambda x||_1 of a claimed left eigenpair — the
/// quantity that certifies a reputation vector. Sizes must agree.
[[nodiscard]] double left_eigenpair_residual(const Matrix& a,
                                             std::span<const double> x,
                                             double lambda);

}  // namespace svo::linalg
