#include "linalg/sparse.hpp"

#include <algorithm>
#include <cmath>

#include "obs/trace.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace svo::linalg {

SparseMatrix SparseMatrix::from_triplets(std::size_t rows, std::size_t cols,
                                         std::vector<Triplet> triplets) {
  for (const Triplet& t : triplets) {
    detail::require(t.row < rows && t.col < cols,
                    "SparseMatrix: triplet index out of range");
    detail::require(std::isfinite(t.value),
                    "SparseMatrix: triplet value must be finite");
  }
  std::sort(triplets.begin(), triplets.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_.reserve(triplets.size());
  m.val_.reserve(triplets.size());
  for (std::size_t k = 0; k < triplets.size();) {
    const std::size_t r = triplets[k].row;
    const std::size_t c = triplets[k].col;
    double v = 0.0;
    for (; k < triplets.size() && triplets[k].row == r && triplets[k].col == c;
         ++k) {
      v += triplets[k].value;
    }
    if (v == 0.0) continue;  // stored entry == structural nonzero
    m.col_.push_back(c);
    m.val_.push_back(v);
    m.row_ptr_[r + 1] = m.col_.size();
  }
  // Rows with no entry keep offset 0 in the loop above; forward-fill so
  // row_ptr_ is the usual non-decreasing prefix array.
  for (std::size_t r = 1; r <= rows; ++r) {
    m.row_ptr_[r] = std::max(m.row_ptr_[r], m.row_ptr_[r - 1]);
  }
  return m;
}

SparseMatrix SparseMatrix::from_dense(const Matrix& dense) {
  std::vector<Triplet> triplets;
  for (std::size_t i = 0; i < dense.rows(); ++i) {
    for (std::size_t j = 0; j < dense.cols(); ++j) {
      if (dense(i, j) != 0.0) triplets.push_back({i, j, dense(i, j)});
    }
  }
  return from_triplets(dense.rows(), dense.cols(), std::move(triplets));
}

double SparseMatrix::fill_ratio() const noexcept {
  if (rows_ == 0 || cols_ == 0) return 0.0;
  return static_cast<double>(nnz()) /
         (static_cast<double>(rows_) * static_cast<double>(cols_));
}

SparseMatrix::RowView SparseMatrix::row(std::size_t i) const {
  detail::require(i < rows_, "SparseMatrix: row out of range");
  const std::size_t lo = row_ptr_[i];
  const std::size_t hi = row_ptr_[i + 1];
  return {{col_.data() + lo, hi - lo}, {val_.data() + lo, hi - lo}};
}

double SparseMatrix::at(std::size_t i, std::size_t j) const {
  detail::require(i < rows_ && j < cols_, "SparseMatrix: index out of range");
  const auto begin = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i]);
  const auto end = col_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[i + 1]);
  const auto it = std::lower_bound(begin, end, j);
  if (it == end || *it != j) return 0.0;
  return val_[static_cast<std::size_t>(it - col_.begin())];
}

Matrix SparseMatrix::to_dense() const {
  Matrix m(rows_, cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      m(i, col_[k]) = val_[k];
    }
  }
  return m;
}

SparseMatrix SparseMatrix::transposed() const {
  SparseMatrix t;
  t.rows_ = cols_;
  t.cols_ = rows_;
  t.row_ptr_.assign(cols_ + 1, 0);
  for (const std::size_t c : col_) ++t.row_ptr_[c + 1];
  for (std::size_t r = 1; r <= cols_; ++r) t.row_ptr_[r] += t.row_ptr_[r - 1];
  t.col_.resize(nnz());
  t.val_.resize(nnz());
  std::vector<std::size_t> next(t.row_ptr_.begin(), t.row_ptr_.end() - 1);
  // Walking rows (and columns within rows) ascending fills each output
  // row in ascending source-row order — the order the gather kernels
  // depend on for dense/sparse bit-identity.
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t slot = next[col_[k]]++;
      t.col_[slot] = i;
      t.val_[slot] = val_[k];
    }
  }
  return t;
}

std::vector<double> SparseMatrix::multiply(std::span<const double> x) const {
  if (x.size() != cols_) {
    throw DimensionMismatch("SparseMatrix::multiply: size mismatch");
  }
  std::vector<double> y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      acc += val_[k] * x[col_[k]];
    }
    y[i] = acc;
  }
  return y;
}

std::vector<double> SparseMatrix::multiply_transposed(
    std::span<const double> x) const {
  if (x.size() != rows_) {
    throw DimensionMismatch("SparseMatrix::multiply_transposed: size mismatch");
  }
  std::vector<double> y(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      y[col_[k]] += xi * val_[k];
    }
  }
  return y;
}

namespace {

/// Rows below this run the gather loop serially even when opts.threads
/// asks for the pool; per-element results are identical either way.
constexpr std::size_t kParallelRows = 2048;

/// One application of the dangling-patched, damped transposed operator
/// in gather form over the pre-transposed matrix: output j is the
/// i-ascending dot of at.row(j) with x — exactly the accumulation order
/// of the dense engine's column-block kernel, for any thread count.
void apply_gather(const SparseMatrix& at, const std::vector<std::size_t>& dangling,
                  double damping, std::span<const double> x,
                  std::vector<double>& y, std::size_t threads) {
  const std::size_t n = at.rows();
  double dangling_mass = 0.0;
  for (const std::size_t i : dangling) dangling_mass += x[i];
  const double base =
      (1.0 - damping) * dangling_mass / static_cast<double>(n) +
      damping / static_cast<double>(n);
  const auto one_output = [&](std::size_t j) {
    const SparseMatrix::RowView incoming = at.row(j);
    double acc = 0.0;
    for (std::size_t k = 0; k < incoming.size(); ++k) {
      const double xi = x[incoming.cols[k]];
      if (xi == 0.0) continue;
      acc += xi * incoming.values[k];
    }
    y[j] = (1.0 - damping) * acc + base;
  };
  if (threads > 1 && n >= kParallelRows) {
    const std::size_t grain = (n + threads * 4 - 1) / (threads * 4);
    svo::util::parallel_for(0, n, one_output, grain);
  } else {
    for (std::size_t j = 0; j < n; ++j) one_output(j);
  }
}

PowerMethodResult sparse_power_method_impl(const SparseMatrix& a,
                                           const PowerMethodOptions& opts,
                                           std::span<const double> warm_start,
                                           double* spmv_seconds) {
  detail::require(a.rows() == a.cols(),
                  "sparse_power_method: matrix must be square");
  opts.validate();

  PowerMethodResult result;
  const std::size_t n = a.rows();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  std::vector<std::size_t> dangling;  // empty rows, ascending
  for (std::size_t i = 0; i < n; ++i) {
    const SparseMatrix::RowView r = a.row(i);
    if (r.empty()) {
      dangling.push_back(i);
      continue;
    }
    for (const double v : r.values) {
      detail::require(v >= 0.0, "sparse_power_method: matrix must be non-negative");
    }
  }

  std::vector<double> x;
  if (!warm_start.empty()) {
    detail::require(warm_start.size() == n,
                    "sparse_power_method: warm_start size mismatch");
    x.assign(warm_start.begin(), warm_start.end());
    double sum = 0.0;
    for (const double v : x) {
      detail::require(std::isfinite(v) && v >= 0.0,
                      "sparse_power_method: warm_start must be finite and "
                      "non-negative");
      sum += v;
    }
    detail::require(sum > 0.0,
                    "sparse_power_method: warm_start must have positive sum");
    (void)normalize_l1(x);
    result.warm_started = true;
  } else {
    x.assign(n, 1.0 / static_cast<double>(n));
  }
  std::vector<double> y(n, 0.0);
  const SparseMatrix at = a.transposed();

  for (std::size_t it = 0; it < opts.max_iterations; ++it) {
    if (spmv_seconds != nullptr) {
      const util::WallTimer timer;
      apply_gather(at, dangling, opts.damping, x, y, opts.threads);
      *spmv_seconds += timer.seconds();
    } else {
      apply_gather(at, dangling, opts.damping, x, y, opts.threads);
    }
    result.eigenvalue = norm_l1(y);
    if (!normalize_l1(y)) {
      std::fill(y.begin(), y.end(), 1.0 / static_cast<double>(n));
      result.iterations = it + 1;
      result.converged = false;
      result.eigenvector = std::move(y);
      return result;
    }
    const double delta = distance_l1(y, x);
    x.swap(y);
    result.iterations = it + 1;
    if (delta < opts.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.eigenvector = std::move(x);
  return result;
}

}  // namespace

PowerMethodResult sparse_power_method(const SparseMatrix& a,
                                      const PowerMethodOptions& opts,
                                      std::span<const double> warm_start) {
  obs::Span span("linalg.sparse_power_method", "linalg");
  double spmv_seconds = 0.0;
  PowerMethodResult result = sparse_power_method_impl(
      a, opts, warm_start, span.active() ? &spmv_seconds : nullptr);
  if (span.active()) {
    span.arg("n", static_cast<double>(a.rows()));
    span.arg("nnz", static_cast<double>(a.nnz()));
    span.arg("fill_ratio", a.fill_ratio());
    span.arg("iterations", static_cast<double>(result.iterations));
    span.arg("converged", result.converged ? 1.0 : 0.0);
    span.arg("warm_started", result.warm_started ? 1.0 : 0.0);
    span.arg("spmv_seconds", spmv_seconds);
    obs::MetricRegistry& m = obs::Recorder::instance().metrics();
    m.counter("linalg.sparse_power.calls").add();
    m.counter("linalg.sparse_power.iterations").add(result.iterations);
    m.counter("linalg.spmv.applications").add(result.iterations);
    m.counter("linalg.spmv.nnz").add(a.nnz() * result.iterations);
    if (result.warm_started) m.counter("linalg.sparse_power.warm_starts").add();
    if (!result.converged) m.counter("linalg.sparse_power.nonconverged").add();
    m.histogram("linalg.sparse_power.iters_per_call")
        .observe(static_cast<double>(result.iterations));
    m.histogram("linalg.sparse_power.fill_pct").observe(100.0 * a.fill_ratio());
  }
  return result;
}

}  // namespace svo::linalg
