/// \file svo.hpp
/// Umbrella header: the library's public API in one include. Prefer the
/// per-module headers in translation units that care about compile time;
/// this is the convenient entry point for applications and examples.
///
///   #include "svo.hpp"
///   svo::core::TvofMechanism tvof(solver);
#pragma once

// Substrate layers, bottom-up.
#include "util/csv.hpp"          // IWYU pragma: export
#include "util/error.hpp"        // IWYU pragma: export
#include "util/rng.hpp"          // IWYU pragma: export
#include "util/stats.hpp"        // IWYU pragma: export
#include "util/thread_pool.hpp"  // IWYU pragma: export
#include "util/histogram.hpp"    // IWYU pragma: export
#include "util/timer.hpp"        // IWYU pragma: export
#include "util/env.hpp"          // IWYU pragma: export

#include "obs/json.hpp"     // IWYU pragma: export
#include "obs/metrics.hpp"  // IWYU pragma: export
#include "obs/trace.hpp"    // IWYU pragma: export

#include "linalg/matrix.hpp"        // IWYU pragma: export
#include "linalg/power_method.hpp"  // IWYU pragma: export
#include "linalg/spectral.hpp"      // IWYU pragma: export

#include "graph/centrality.hpp"  // IWYU pragma: export
#include "graph/digraph.hpp"     // IWYU pragma: export
#include "graph/generators.hpp"  // IWYU pragma: export
#include "graph/scc.hpp"         // IWYU pragma: export

#include "lp/problem.hpp"  // IWYU pragma: export
#include "lp/simplex.hpp"  // IWYU pragma: export

#include "des/event_queue.hpp"  // IWYU pragma: export
#include "des/network.hpp"      // IWYU pragma: export

#include "ip/assignment.hpp"    // IWYU pragma: export
#include "ip/annealing.hpp"     // IWYU pragma: export
#include "ip/bnb.hpp"           // IWYU pragma: export
#include "ip/dag.hpp"           // IWYU pragma: export
#include "ip/greedy.hpp"        // IWYU pragma: export
#include "ip/local_search.hpp"  // IWYU pragma: export
#include "ip/lp_bnb.hpp"        // IWYU pragma: export

#include "trace/atlas_synth.hpp"  // IWYU pragma: export
#include "trace/lublin.hpp"       // IWYU pragma: export
#include "trace/programs.hpp"     // IWYU pragma: export
#include "trace/swf.hpp"          // IWYU pragma: export

#include "workload/braun.hpp"         // IWYU pragma: export
#include "workload/etc.hpp"           // IWYU pragma: export
#include "workload/instance_gen.hpp"  // IWYU pragma: export
#include "workload/params.hpp"        // IWYU pragma: export

#include "trust/beta.hpp"         // IWYU pragma: export
#include "trust/decay.hpp"        // IWYU pragma: export
#include "trust/hierarchy.hpp"    // IWYU pragma: export
#include "trust/propagation.hpp"  // IWYU pragma: export
#include "trust/reputation.hpp"   // IWYU pragma: export
#include "trust/trust_graph.hpp"  // IWYU pragma: export

#include "game/coalition.hpp"       // IWYU pragma: export
#include "game/core_solution.hpp"   // IWYU pragma: export
#include "game/pareto.hpp"          // IWYU pragma: export
#include "game/payoff.hpp"          // IWYU pragma: export
#include "game/sampling.hpp"        // IWYU pragma: export
#include "game/stability.hpp"       // IWYU pragma: export
#include "game/structure.hpp"       // IWYU pragma: export
#include "game/value_function.hpp"  // IWYU pragma: export

#include "core/centrality_vof.hpp"    // IWYU pragma: export
#include "core/distributed_tvof.hpp"  // IWYU pragma: export
#include "core/mechanism.hpp"         // IWYU pragma: export
#include "core/merge_split.hpp"       // IWYU pragma: export
#include "core/rvof.hpp"              // IWYU pragma: export
#include "core/tvof.hpp"              // IWYU pragma: export

#include "sim/config.hpp"         // IWYU pragma: export
#include "sim/execution.hpp"      // IWYU pragma: export
#include "sim/learning.hpp"       // IWYU pragma: export
#include "sim/multi_program.hpp"  // IWYU pragma: export
#include "sim/runner.hpp"         // IWYU pragma: export
#include "sim/scenario.hpp"       // IWYU pragma: export
