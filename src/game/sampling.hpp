/// \file sampling.hpp
/// Approximate and alternative power/payoff indices:
///  - Monte-Carlo Shapley value (Castro et al.-style permutation
///    sampling), usable at the paper's m = 16 where the exact O(2^m)
///    computation needs 65k IP solves;
///  - exact Banzhaf index, the other classical marginal-contribution
///    index, for the payoff-division ablation.
#pragma once

#include <cstdint>

#include "game/payoff.hpp"
#include "util/rng.hpp"

namespace svo::game {

/// Result of sampled Shapley estimation.
struct SampledShapley {
  /// Estimated values, one per player.
  std::vector<double> value;
  /// Per-player standard error of the estimate (sigma / sqrt(samples)).
  std::vector<double> standard_error;
  /// Permutations drawn.
  std::size_t permutations = 0;
};

/// Estimate the Shapley value by sampling `permutations` random player
/// orders; each permutation contributes one marginal vector. Unbiased;
/// error shrinks as 1/sqrt(permutations). Requires m in [1, 64] and
/// permutations >= 1. Deterministic in `rng`.
[[nodiscard]] SampledShapley shapley_value_sampled(std::size_t m,
                                                   const ValueOracle& v,
                                                   std::size_t permutations,
                                                   util::Xoshiro256& rng);

/// Exact (raw, non-normalized) Banzhaf index:
///   beta_i = 2^-(m-1) * sum_{S not containing i} (v(S+i) - v(S)).
/// Requires m in [1, 20] (2^m oracle calls — memoize the oracle).
[[nodiscard]] std::vector<double> banzhaf_index(std::size_t m,
                                                const ValueOracle& v);

}  // namespace svo::game
