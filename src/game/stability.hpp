/// \file stability.hpp
/// Individual stability (paper Definition 1): a VO C is individually
/// stable if no member G_i can leave C without making at least one
/// remaining member worse off under the bicriteria preference
/// (individual payoff, average reputation).
///
/// With equal sharing every member of a VO has the same payoff, so the
/// member preference comparison between C and C \ {G_i} reduces to one
/// comparison of the two VOs' (share, average-reputation) points; we keep
/// the per-member formulation in the API for clarity and future payoff
/// rules.
#pragma once

#include <functional>

#include "game/coalition.hpp"
#include "game/pareto.hpp"

namespace svo::game {

/// Evaluates a coalition to its bicriteria point (payoff share of each
/// member, average reputation). Implementations typically combine a
/// VoValueFunction with a reputation metric.
using CoalitionScorer = std::function<BicriteriaPoint(Coalition)>;

/// Weak preference of a (remaining) member between staying in `before`
/// and moving to `after`: after >= before iff `after` is at least as good
/// in both payoff and reputation.
[[nodiscard]] bool weakly_prefers(const BicriteriaPoint& after,
                                  const BicriteriaPoint& before) noexcept;

/// Definition 1 check: returns true iff there is NO member G_i of `c`
/// whose departure leaves every remaining member weakly better off
/// (i.e. C\{G_i} >=_j C for all j in C\{G_i}).
/// Singleton and empty coalitions are trivially stable.
[[nodiscard]] bool individually_stable(Coalition c,
                                       const CoalitionScorer& scorer);

/// If unstable, returns the index of a member whose removal every
/// remaining member weakly prefers; SIZE_MAX when stable.
[[nodiscard]] std::size_t find_blocking_departure(Coalition c,
                                                  const CoalitionScorer& scorer);

}  // namespace svo::game
