/// \file payoff.hpp
/// Payoff division rules. The paper adopts equal sharing (eq. (18)):
/// every member of coalition C receives psi = v(C)/|C|; the Shapley value
/// is implemented exactly (O(2^m) with a memoized v) for the payoff-
/// division ablation on small games.
#pragma once

#include <functional>
#include <vector>

#include "game/coalition.hpp"

namespace svo::game {

/// Value oracle signature: v(C) for any coalition of the m players.
using ValueOracle = std::function<double(Coalition)>;

/// Equal share psi_G(C) = v(C)/|C| (eq. (18)). Empty coalitions share 0.
[[nodiscard]] double equal_share(double coalition_value, std::size_t size);

/// Equal-share payoff vector over m players: members of `c` get the
/// share, outsiders 0.
[[nodiscard]] std::vector<double> equal_share_vector(Coalition c,
                                                     double coalition_value,
                                                     std::size_t m);

/// Exact Shapley value of the game (m players, oracle v):
///   phi_i = sum_{S not containing i} |S|! (m-|S|-1)! / m! * (v(S+i)-v(S)).
/// Cost: 2^m oracle calls per player without memoization (use a memoized
/// oracle!). Requires m <= 20 to guard against accidental blowups.
[[nodiscard]] std::vector<double> shapley_value(std::size_t m,
                                                const ValueOracle& v);

}  // namespace svo::game
