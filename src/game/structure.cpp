#include "game/structure.hpp"

#include <bit>
#include <limits>
#include <vector>

namespace svo::game {

OptimalStructure optimal_coalition_structure(std::size_t m,
                                             const ValueOracle& v) {
  detail::require(m > 0 && m <= 16,
                  "optimal_coalition_structure: m must be in [1,16]");
  const std::uint64_t full = Coalition::all(m).bits();
  const std::size_t n_subsets = static_cast<std::size_t>(full) + 1;

  // Cache v over all subsets once (the DP touches each v(T) many times).
  std::vector<double> value(n_subsets, 0.0);
  for (std::uint64_t s = 1; s <= full; ++s) {
    value[s] = v(Coalition(s));
  }

  std::vector<double> best(n_subsets, 0.0);
  std::vector<std::uint64_t> choice(n_subsets, 0);
  for (std::uint64_t s = 1; s <= full; ++s) {
    // Anchor the lowest set bit of s into the chosen block T so every
    // partition is enumerated exactly once.
    const std::uint64_t anchor = s & (~s + 1);
    const std::uint64_t rest = s ^ anchor;
    double bs = -std::numeric_limits<double>::infinity();
    std::uint64_t bc = 0;
    // Enumerate T = anchor | sub for every subset `sub` of `rest`.
    std::uint64_t sub = rest;
    for (;;) {
      const std::uint64_t t = anchor | sub;
      const double candidate = value[t] + best[s ^ t];
      if (candidate > bs) {
        bs = candidate;
        bc = t;
      }
      if (sub == 0) break;
      sub = (sub - 1) & rest;
    }
    best[s] = bs;
    choice[s] = bc;
  }

  OptimalStructure out;
  out.total_value = best[full];
  out.evaluations = static_cast<std::size_t>(full);
  std::uint64_t s = full;
  while (s != 0) {
    out.partition.emplace_back(choice[s]);
    s ^= choice[s];
  }
  return out;
}

double structure_value(const std::vector<Coalition>& partition,
                       const ValueOracle& v) {
  double acc = 0.0;
  for (const Coalition c : partition) acc += v(c);
  return acc;
}

}  // namespace svo::game
