#include "game/sampling.hpp"

#include <cmath>
#include <numeric>

namespace svo::game {

SampledShapley shapley_value_sampled(std::size_t m, const ValueOracle& v,
                                     std::size_t permutations,
                                     util::Xoshiro256& rng) {
  detail::require(m > 0 && m <= Coalition::kMaxPlayers,
                  "shapley_value_sampled: m must be in [1,64]");
  detail::require(permutations >= 1,
                  "shapley_value_sampled: need at least one permutation");

  SampledShapley out;
  out.permutations = permutations;
  std::vector<double> sum(m, 0.0);
  std::vector<double> sum_sq(m, 0.0);

  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t p = 0; p < permutations; ++p) {
    rng.shuffle(order);
    Coalition prefix;
    double prev = v(prefix);  // v(empty) — oracles must handle it
    for (const std::size_t player : order) {
      prefix = prefix.with(player);
      const double curr = v(prefix);
      const double marginal = curr - prev;
      sum[player] += marginal;
      sum_sq[player] += marginal * marginal;
      prev = curr;
    }
  }
  out.value.resize(m);
  out.standard_error.resize(m);
  const double n = static_cast<double>(permutations);
  for (std::size_t i = 0; i < m; ++i) {
    out.value[i] = sum[i] / n;
    const double var =
        permutations > 1
            ? std::max(0.0, (sum_sq[i] - sum[i] * sum[i] / n) / (n - 1.0))
            : 0.0;
    out.standard_error[i] = std::sqrt(var / n);
  }
  return out;
}

std::vector<double> banzhaf_index(std::size_t m, const ValueOracle& v) {
  detail::require(m > 0 && m <= 20, "banzhaf_index: m must be in [1,20]");
  std::vector<double> beta(m, 0.0);
  const std::uint64_t full = Coalition::all(m).bits();
  for (std::uint64_t s = 0;; ++s) {
    const Coalition base(s);
    const double vs = v(base);
    for (std::size_t i = 0; i < m; ++i) {
      if (base.contains(i)) continue;
      beta[i] += v(base.with(i)) - vs;
    }
    if (s == full) break;
  }
  const double scale = std::ldexp(1.0, -static_cast<int>(m - 1));  // 2^-(m-1)
  for (double& b : beta) b *= scale;
  return beta;
}

}  // namespace svo::game
