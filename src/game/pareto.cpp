#include "game/pareto.hpp"

#include <algorithm>
#include <numeric>

#include "util/error.hpp"

namespace svo::game {

bool dominates(const BicriteriaPoint& a, const BicriteriaPoint& b) noexcept {
  const bool ge = a.payoff >= b.payoff && a.reputation >= b.reputation;
  const bool gt = a.payoff > b.payoff || a.reputation > b.reputation;
  return ge && gt;
}

std::vector<std::size_t> pareto_front(
    const std::vector<BicriteriaPoint>& points) {
  // Candidate sets in this project are tiny (the |L| <= m VOs a mechanism
  // explores), so the O(n^2) definition-based filter is the right tool:
  // no sweep-order subtleties around duplicate points.
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      dominated = (j != i) && dominates(points[j], points[i]);
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

bool is_pareto_optimal(const std::vector<BicriteriaPoint>& points,
                       std::size_t index) {
  detail::require(index < points.size(), "is_pareto_optimal: index range");
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i != index && dominates(points[i], points[index])) return false;
  }
  return true;
}

}  // namespace svo::game
