#include "game/core_solution.hpp"

#include <cmath>

#include "lp/simplex.hpp"

namespace svo::game {

namespace {

double coalition_sum(const std::vector<double>& psi, Coalition c) {
  double acc = 0.0;
  for (const std::size_t i : c.members()) acc += psi[i];
  return acc;
}

}  // namespace

bool is_imputation(const std::vector<double>& psi, const ValueOracle& v,
                   double tol) {
  const std::size_t m = psi.size();
  detail::require(m > 0 && m <= 20, "is_imputation: m must be in [1,20]");
  for (std::size_t i = 0; i < m; ++i) {
    if (psi[i] < v(Coalition::of({i})) - tol) return false;
  }
  const Coalition grand = Coalition::all(m);
  return std::abs(coalition_sum(psi, grand) - v(grand)) <= tol;
}

bool in_core(const std::vector<double>& psi, const ValueOracle& v,
             double tol) {
  const std::size_t m = psi.size();
  detail::require(m > 0 && m <= 20, "in_core: m must be in [1,20]");
  const Coalition grand = Coalition::all(m);
  if (std::abs(coalition_sum(psi, grand) - v(grand)) > tol) return false;
  for (std::uint64_t s = 1; s <= grand.bits(); ++s) {
    const Coalition c(s);
    if (coalition_sum(psi, c) < v(c) - tol) return false;
    if (s == grand.bits()) break;
  }
  return true;
}

std::optional<std::vector<double>> find_core_imputation(std::size_t m,
                                                        const ValueOracle& v) {
  detail::require(m > 0 && m <= 16, "find_core_imputation: m must be in [1,16]");
  const Coalition grand = Coalition::all(m);
  // Feasibility LP over psi >= 0 is not general enough: core payoffs may
  // be negative in arbitrary games. Shift variables by a constant K so
  // psi_i = y_i - K with y_i >= 0; K chosen from the value scale.
  double scale = std::abs(v(grand));
  for (std::size_t i = 0; i < m; ++i) {
    scale = std::max(scale, std::abs(v(Coalition::of({i}))));
  }
  const double shift = scale + 1.0;

  lp::Problem p(m);
  // Objective 0 (pure feasibility).
  // Efficiency: sum (y_i - K) == v(G)  ->  sum y_i == v(G) + m*K.
  p.add_constraint(std::vector<double>(m, 1.0), lp::Sense::Equal,
                   v(grand) + static_cast<double>(m) * shift);
  // Coalition rationality rows.
  for (std::uint64_t s = 1; s < grand.bits(); ++s) {
    const Coalition c(s);
    std::vector<double> row(m, 0.0);
    for (const std::size_t i : c.members()) row[i] = 1.0;
    p.add_constraint(std::move(row), lp::Sense::GreaterEqual,
                     v(c) + static_cast<double>(c.size()) * shift);
  }
  const lp::Solution sol = lp::solve(p);
  if (sol.status != lp::SolveStatus::Optimal) return std::nullopt;
  std::vector<double> psi(m);
  for (std::size_t i = 0; i < m; ++i) psi[i] = sol.x[i] - shift;
  return psi;
}

}  // namespace svo::game
