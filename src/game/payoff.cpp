#include "game/payoff.hpp"

namespace svo::game {

double equal_share(double coalition_value, std::size_t size) {
  return size == 0 ? 0.0 : coalition_value / static_cast<double>(size);
}

std::vector<double> equal_share_vector(Coalition c, double coalition_value,
                                       std::size_t m) {
  detail::require(m <= Coalition::kMaxPlayers, "equal_share_vector: m > 64");
  std::vector<double> psi(m, 0.0);
  const double share = equal_share(coalition_value, c.size());
  for (const std::size_t i : c.members()) psi[i] = share;
  return psi;
}

std::vector<double> shapley_value(std::size_t m, const ValueOracle& v) {
  detail::require(m > 0 && m <= 20, "shapley_value: m must be in [1,20]");
  // Precompute |S|-dependent weights |S|!(m-|S|-1)!/m! iteratively to
  // avoid factorial overflow: w(s) = s!(m-s-1)!/m!.
  std::vector<double> weight(m, 0.0);
  for (std::size_t s = 0; s < m; ++s) {
    // w(s) = 1 / (m * C(m-1, s)).
    double binom = 1.0;
    for (std::size_t j = 1; j <= s; ++j) {
      binom *= static_cast<double>(m - j) / static_cast<double>(j);
    }
    weight[s] = 1.0 / (static_cast<double>(m) * binom);
  }
  std::vector<double> phi(m, 0.0);
  const std::uint64_t full = Coalition::all(m).bits();
  for (std::uint64_t s = 0; s <= full; ++s) {
    const Coalition base(s);
    const double vs = v(base);
    const std::size_t size = base.size();
    for (std::size_t i = 0; i < m; ++i) {
      if (base.contains(i)) continue;
      phi[i] += weight[size] * (v(base.with(i)) - vs);
    }
    if (s == full) break;  // avoid uint64 wrap when m == 64 (guarded anyway)
  }
  return phi;
}

}  // namespace svo::game
