/// \file structure.hpp
/// Optimal coalition structure generation. The paper notes that "if the
/// grand coalition does not form, independent and disjoint coalitions
/// would form" (Section II-C); this module computes the partition of the
/// players maximizing total value — the social-welfare benchmark that
/// merge-and-split (and any other structure-forming process) can be
/// measured against.
#pragma once

#include "game/payoff.hpp"

namespace svo::game {

/// An optimal partition and its total value.
struct OptimalStructure {
  std::vector<Coalition> partition;
  double total_value = 0.0;
  /// Oracle evaluations performed (== 2^m: each subset once).
  std::size_t evaluations = 0;
};

/// Exact optimal coalition structure by subset dynamic programming:
/// best(S) = max over subsets T of S containing S's lowest player of
/// v(T) + best(S \ T). Complexity Theta(3^m) time, Theta(2^m) memory;
/// m <= 16 enforced (3^16 ~= 43M steps, seconds at most).
[[nodiscard]] OptimalStructure optimal_coalition_structure(
    std::size_t m, const ValueOracle& v);

/// Total value of an explicit partition (no disjointness check beyond
/// debug asserts; use for reporting).
[[nodiscard]] double structure_value(const std::vector<Coalition>& partition,
                                     const ValueOracle& v);

}  // namespace svo::game
