/// \file value_function.hpp
/// The VO formation game's characteristic function, eq. (15):
///
///   v(C) = 0                 if C is empty or the IP is infeasible,
///   v(C) = P - C(T, C)       otherwise,
///
/// where C(T, C) is the optimal (or best-found) assignment cost of the
/// program on coalition C. Evaluations are memoized per coalition mask,
/// so a mechanism run and subsequent game-theoretic analysis (stability,
/// Shapley, core) never solve the same IP twice.
#pragma once

#include <cstddef>
#include <memory>
#include <unordered_map>

#include "game/coalition.hpp"
#include "ip/assignment.hpp"
#include "ip/warm_start.hpp"

namespace svo::game {

/// One memoized coalition evaluation.
struct CoalitionEvaluation {
  /// Whether the solver produced a constraint-satisfying mapping.
  bool feasible = false;
  /// v(C) per eq. (15); 0 when infeasible.
  double value = 0.0;
  /// C(T, C): total assignment cost (meaningful only when feasible).
  double cost = 0.0;
  /// Task -> *original* GSP index mapping (empty when infeasible).
  ip::Assignment mapping;
  /// Solver telemetry (status, nodes, warm-start usage).
  ip::SolveStats stats;
};

/// Warm-start hint for evaluate(): the evaluation of the parent
/// coalition C in the shrinking loop, plus the (original-index) GSP
/// whose removal produced the coalition being evaluated. The hint is
/// advisory — warm and cold evaluations of the same coalition agree on
/// feasibility, cost, value, and mapping whenever the solver runs to
/// proof (see ip/warm_start.hpp).
struct WarmHint {
  /// Evaluation of the parent coalition; must stay alive for the call.
  /// References into the VoValueFunction cache are stable.
  const CoalitionEvaluation* previous = nullptr;
  /// Original GSP index removed from the parent coalition.
  std::size_t removed_gsp = SIZE_MAX;
};

/// Memoizing characteristic function. Holds references to the instance
/// and solver; both must outlive this object.
class VoValueFunction {
 public:
  /// `inst` covers all m GSPs; coalitions restrict it by row.
  VoValueFunction(const ip::AssignmentInstance& inst,
                  const ip::AssignmentSolver& solver);

  /// Number of players (GSPs) in the underlying instance.
  [[nodiscard]] std::size_t num_players() const noexcept {
    return inst_.num_gsps();
  }

  /// Full evaluation of coalition `c` (memoized). An Unknown solver
  /// outcome is treated as infeasible for game semantics — both
  /// mechanisms see the identical solver, so comparisons stay fair
  /// (DESIGN.md §4.4). Throws InvalidArgument if `c` exceeds m players.
  const CoalitionEvaluation& evaluate(Coalition c) const;

  /// Warm evaluation: like evaluate(c), but when `hint.previous` holds a
  /// feasible mapping of c + {hint.removed_gsp}, repair it (reassign
  /// only the removed GSP's tasks) into a warm incumbent and reuse the
  /// full instance's per-task cost orders, both handed to the solver as
  /// ip::WarmStart. Memoized identically to evaluate(c); a cache hit
  /// ignores the hint.
  const CoalitionEvaluation& evaluate(Coalition c, const WarmHint& hint) const;

  /// v(C) shortcut.
  [[nodiscard]] double value(Coalition c) const { return evaluate(c).value; }

  /// Number of distinct coalitions evaluated so far.
  [[nodiscard]] std::size_t evaluations() const noexcept {
    return cache_.size();
  }

 private:
  const CoalitionEvaluation& evaluate_impl(Coalition c,
                                           const WarmHint* hint) const;

  const ip::AssignmentInstance& inst_;
  const ip::AssignmentSolver& solver_;
  mutable std::unordered_map<std::uint64_t, CoalitionEvaluation> cache_;
  /// Per-task cost orders of the full instance, built lazily on the
  /// first warm evaluation and shared by every restricted solve.
  mutable std::shared_ptr<const ip::CostOrderCache> cost_order_;
};

}  // namespace svo::game
