/// \file pareto.hpp
/// Bicriteria (payoff, reputation) dominance and Pareto-front extraction
/// for the optimization problem of eqs. (16)-(17). Theorem 2 states TVOF
/// returns a Pareto-optimal VO; the tests verify it with these helpers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace svo::game {

/// One candidate solution in (individual payoff, average reputation)
/// space; `tag` identifies the candidate (e.g. coalition bits).
struct BicriteriaPoint {
  double payoff = 0.0;
  double reputation = 0.0;
  std::uint64_t tag = 0;
};

/// Weak Pareto dominance: a dominates b iff a is >= b in both criteria
/// and > in at least one.
[[nodiscard]] bool dominates(const BicriteriaPoint& a,
                             const BicriteriaPoint& b) noexcept;

/// Indices of the non-dominated points (the Pareto front), in input
/// order. O(n log n) via a sweep after sorting by payoff.
[[nodiscard]] std::vector<std::size_t> pareto_front(
    const std::vector<BicriteriaPoint>& points);

/// True iff points[index] is dominated by no other point.
[[nodiscard]] bool is_pareto_optimal(const std::vector<BicriteriaPoint>& points,
                                     std::size_t index);

}  // namespace svo::game
