/// \file core_solution.hpp
/// Classical coalitional-game solution concepts for the VO game:
/// imputations, the core, and a constructive core-membership LP. The
/// paper (Section II-C, citing the authors' earlier merge-and-split
/// work [25]) notes the core of the VO game can be empty — the
/// example `core_emptiness` and the tests demonstrate both cases.
#pragma once

#include <optional>
#include <vector>

#include "game/payoff.hpp"

namespace svo::game {

/// True iff `psi` is an imputation of the m-player game `v`:
/// psi_i >= v({i}) for all i (individual rationality) and
/// sum psi_i == v(grand coalition) (efficiency), within `tol`.
[[nodiscard]] bool is_imputation(const std::vector<double>& psi,
                                 const ValueOracle& v, double tol = 1e-6);

/// True iff `psi` lies in the core: efficiency plus
/// sum_{i in S} psi_i >= v(S) for every coalition S. Enumerates all 2^m
/// subsets — m <= 20 enforced.
[[nodiscard]] bool in_core(const std::vector<double>& psi,
                           const ValueOracle& v, double tol = 1e-6);

/// Find a core imputation by LP (variables psi_i, one >=-row per
/// coalition, efficiency as equality; feasibility problem solved with
/// the svo::lp simplex). Returns nullopt iff the core is empty.
/// m <= 16 enforced (2^m LP rows).
[[nodiscard]] std::optional<std::vector<double>> find_core_imputation(
    std::size_t m, const ValueOracle& v);

}  // namespace svo::game
