#include "game/value_function.hpp"

namespace svo::game {

VoValueFunction::VoValueFunction(const ip::AssignmentInstance& inst,
                                 const ip::AssignmentSolver& solver)
    : inst_(inst), solver_(solver) {
  inst_.validate();
  detail::require(inst_.num_gsps() <= Coalition::kMaxPlayers,
                  "VoValueFunction: more than 64 GSPs");
}

const CoalitionEvaluation& VoValueFunction::evaluate(Coalition c) const {
  return evaluate_impl(c, nullptr);
}

const CoalitionEvaluation& VoValueFunction::evaluate(
    Coalition c, const WarmHint& hint) const {
  return evaluate_impl(c, &hint);
}

const CoalitionEvaluation& VoValueFunction::evaluate_impl(
    Coalition c, const WarmHint* hint) const {
  const auto it = cache_.find(c.bits());
  if (it != cache_.end()) return it->second;

  CoalitionEvaluation eval;
  if (!c.empty()) {
    detail::require(Coalition::all(inst_.num_gsps()).bits() ==
                        (c.bits() | Coalition::all(inst_.num_gsps()).bits()),
                    "VoValueFunction: coalition has players outside the game");
    std::vector<std::size_t> original;
    const ip::AssignmentInstance sub =
        inst_.restrict_to(c.mask(inst_.num_gsps()), &original);

    ip::AssignmentSolution sol;
    if (hint != nullptr) {
      // The full instance is the common "parent" coordinate system:
      // mappings are stored in original GSP indices and `original` maps
      // restricted rows back to it, so both the repaired incumbent and
      // the shared cost orders translate through `original` alone.
      if (cost_order_ == nullptr) {
        cost_order_ = std::make_shared<ip::CostOrderCache>(inst_);
      }
      ip::WarmStart warm;
      warm.cost_order = cost_order_;
      warm.rows = original;
      if (hint->previous != nullptr && hint->previous->feasible &&
          hint->previous->mapping.size() == inst_.num_tasks()) {
        const ip::RepairResult repaired = ip::repair_for_removal(
            sub, original, hint->previous->mapping, hint->removed_gsp);
        if (repaired.ok) {
          warm.incumbent = repaired.assignment;
          warm.incumbent_cost = repaired.cost;
          warm.repair_moves = repaired.moves;
        }
      }
      sol = solver_.solve(sub, warm);
    } else {
      sol = solver_.solve(sub);
    }
    eval.stats = sol.stats;
    if (sol.has_assignment()) {
      eval.feasible = true;
      eval.cost = sol.cost;
      eval.value = inst_.payment - sol.cost;  // eq. (15)
      eval.mapping.resize(sol.assignment.size());
      for (std::size_t t = 0; t < sol.assignment.size(); ++t) {
        eval.mapping[t] = original[sol.assignment[t]];
      }
    }
  }
  return cache_.emplace(c.bits(), std::move(eval)).first->second;
}

}  // namespace svo::game
