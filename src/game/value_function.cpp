#include "game/value_function.hpp"

namespace svo::game {

VoValueFunction::VoValueFunction(const ip::AssignmentInstance& inst,
                                 const ip::AssignmentSolver& solver)
    : inst_(inst), solver_(solver) {
  inst_.validate();
  detail::require(inst_.num_gsps() <= Coalition::kMaxPlayers,
                  "VoValueFunction: more than 64 GSPs");
}

const CoalitionEvaluation& VoValueFunction::evaluate(Coalition c) const {
  const auto it = cache_.find(c.bits());
  if (it != cache_.end()) return it->second;

  CoalitionEvaluation eval;
  if (!c.empty()) {
    detail::require(Coalition::all(inst_.num_gsps()).bits() ==
                        (c.bits() | Coalition::all(inst_.num_gsps()).bits()),
                    "VoValueFunction: coalition has players outside the game");
    std::vector<std::size_t> original;
    const ip::AssignmentInstance sub =
        inst_.restrict_to(c.mask(inst_.num_gsps()), &original);
    const ip::AssignmentSolution sol = solver_.solve(sub);
    eval.solver_status = sol.status;
    eval.solver_nodes = sol.nodes_explored;
    if (sol.has_assignment()) {
      eval.feasible = true;
      eval.cost = sol.cost;
      eval.value = inst_.payment - sol.cost;  // eq. (15)
      eval.mapping.resize(sol.assignment.size());
      for (std::size_t t = 0; t < sol.assignment.size(); ++t) {
        eval.mapping[t] = original[sol.assignment[t]];
      }
    }
  }
  return cache_.emplace(c.bits(), std::move(eval)).first->second;
}

}  // namespace svo::game
