/// \file coalition.hpp
/// Coalitions (VOs) as bitsets over at most 64 players. The paper uses
/// m = 16 GSPs; a word-sized mask gives O(1) set algebra and a dense key
/// for characteristic-function memoization.
#pragma once

#include <bit>
#include <cstdint>
#include <initializer_list>
#include <vector>

#include "util/error.hpp"

namespace svo::game {

/// Immutable coalition value type.
class Coalition {
 public:
  static constexpr std::size_t kMaxPlayers = 64;

  /// Empty coalition.
  constexpr Coalition() noexcept : bits_(0) {}

  /// From a raw bitmask.
  explicit constexpr Coalition(std::uint64_t bits) noexcept : bits_(bits) {}

  /// Grand coalition over m players. Requires m <= 64.
  static Coalition all(std::size_t m) {
    detail::require(m <= kMaxPlayers, "Coalition: more than 64 players");
    return Coalition(m == kMaxPlayers ? ~std::uint64_t{0}
                                      : (std::uint64_t{1} << m) - 1);
  }

  /// From an explicit member list.
  static Coalition of(std::initializer_list<std::size_t> members) {
    std::uint64_t b = 0;
    for (const std::size_t i : members) {
      detail::require(i < kMaxPlayers, "Coalition: player index >= 64");
      b |= std::uint64_t{1} << i;
    }
    return Coalition(b);
  }

  [[nodiscard]] constexpr std::uint64_t bits() const noexcept { return bits_; }
  [[nodiscard]] constexpr bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] constexpr std::size_t size() const noexcept {
    return static_cast<std::size_t>(std::popcount(bits_));
  }
  [[nodiscard]] constexpr bool contains(std::size_t i) const noexcept {
    return i < kMaxPlayers && (bits_ >> i) & 1U;
  }
  /// This coalition plus player i.
  [[nodiscard]] Coalition with(std::size_t i) const {
    detail::require(i < kMaxPlayers, "Coalition: player index >= 64");
    return Coalition(bits_ | (std::uint64_t{1} << i));
  }
  /// This coalition minus player i.
  [[nodiscard]] Coalition without(std::size_t i) const {
    detail::require(i < kMaxPlayers, "Coalition: player index >= 64");
    return Coalition(bits_ & ~(std::uint64_t{1} << i));
  }
  /// Set operations.
  [[nodiscard]] constexpr Coalition unite(Coalition o) const noexcept {
    return Coalition(bits_ | o.bits_);
  }
  [[nodiscard]] constexpr Coalition intersect(Coalition o) const noexcept {
    return Coalition(bits_ & o.bits_);
  }
  [[nodiscard]] constexpr bool is_subset_of(Coalition o) const noexcept {
    return (bits_ & o.bits_) == bits_;
  }

  /// Member indices in increasing order.
  [[nodiscard]] std::vector<std::size_t> members() const {
    std::vector<std::size_t> out;
    out.reserve(size());
    std::uint64_t b = bits_;
    while (b != 0) {
      out.push_back(static_cast<std::size_t>(std::countr_zero(b)));
      b &= b - 1;
    }
    return out;
  }

  /// Membership mask as vector<bool> of length m (for matrix restriction).
  [[nodiscard]] std::vector<bool> mask(std::size_t m) const {
    detail::require(m <= kMaxPlayers, "Coalition: more than 64 players");
    std::vector<bool> keep(m, false);
    for (std::size_t i = 0; i < m; ++i) keep[i] = contains(i);
    return keep;
  }

  friend constexpr bool operator==(Coalition a, Coalition b) noexcept {
    return a.bits_ == b.bits_;
  }
  friend constexpr bool operator!=(Coalition a, Coalition b) noexcept {
    return a.bits_ != b.bits_;
  }

 private:
  std::uint64_t bits_;
};

}  // namespace svo::game
