#include "game/stability.hpp"

namespace svo::game {

bool weakly_prefers(const BicriteriaPoint& after,
                    const BicriteriaPoint& before) noexcept {
  return after.payoff >= before.payoff &&
         after.reputation >= before.reputation;
}

std::size_t find_blocking_departure(Coalition c,
                                    const CoalitionScorer& scorer) {
  if (c.size() <= 1) return SIZE_MAX;
  const BicriteriaPoint before = scorer(c);
  for (const std::size_t i : c.members()) {
    const BicriteriaPoint after = scorer(c.without(i));
    // Equal sharing makes all remaining members' comparison identical;
    // the scorer returns that common point.
    if (weakly_prefers(after, before)) return i;
  }
  return SIZE_MAX;
}

bool individually_stable(Coalition c, const CoalitionScorer& scorer) {
  return find_blocking_departure(c, scorer) == SIZE_MAX;
}

}  // namespace svo::game
