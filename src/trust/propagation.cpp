#include "trust/propagation.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace svo::trust {

namespace {

double clamp_weight(double w, bool clamp) {
  return clamp ? std::clamp(w, 0.0, 1.0) : w;
}

double compose(double path_trust, double edge, Concatenation op) {
  return op == Concatenation::Product ? path_trust * edge
                                      : std::min(path_trust, edge);
}

/// Hop-bounded best-path DP: best[v] after h hops from source, composed
/// with `op`, aggregated with max over all hop counts 1..max_hops.
std::vector<double> best_path_from(const TrustGraph& g, std::size_t source,
                                   const PropagationOptions& opts) {
  const std::size_t n = g.size();
  constexpr double kNone = -1.0;
  std::vector<double> overall(n, kNone);
  std::vector<double> frontier(n, kNone);
  frontier[source] = std::numeric_limits<double>::infinity();  // identity
  // For Product, the identity element is 1; infinity works for Minimum.
  if (opts.concatenation == Concatenation::Product) frontier[source] = 1.0;

  std::vector<double> next(n, kNone);
  for (std::size_t hop = 0; hop < opts.max_hops; ++hop) {
    std::fill(next.begin(), next.end(), kNone);
    bool any = false;
    for (std::size_t u = 0; u < n; ++u) {
      if (frontier[u] == kNone) continue;
      for (const auto& e : g.graph().out_edges(u)) {
        if (e.weight <= 0.0) continue;
        const double w = clamp_weight(e.weight, opts.clamp_to_unit);
        const double t = compose(frontier[u], w, opts.concatenation);
        if (t > next[e.to]) {
          next[e.to] = t;
          any = true;
        }
      }
    }
    for (std::size_t v = 0; v < n; ++v) {
      if (v != source && next[v] > overall[v]) overall[v] = next[v];
    }
    frontier.swap(next);
    if (!any) break;
  }
  return overall;
}

/// DFS over simple paths accumulating the probabilistic-OR complement.
void dfs_paths(const TrustGraph& g, std::size_t current, std::size_t target,
               double path_trust, std::size_t hops_left,
               std::vector<bool>& on_path, double& complement,
               const PropagationOptions& opts) {
  for (const auto& e : g.graph().out_edges(current)) {
    if (e.weight <= 0.0) continue;
    const double w = clamp_weight(e.weight, opts.clamp_to_unit);
    const double t = compose(path_trust, w, opts.concatenation);
    if (e.to == target) {
      complement *= 1.0 - std::clamp(t, 0.0, 1.0);
      continue;
    }
    if (hops_left > 1 && !on_path[e.to]) {
      on_path[e.to] = true;
      dfs_paths(g, e.to, target, t, hops_left - 1, on_path, complement, opts);
      on_path[e.to] = false;
    }
  }
}

/// One DFS from `source` serving every target at once: each arrival at a
/// node v != source multiplies v's complement, then the walk continues
/// *through* v (v may be an intermediate for other targets). Arrival
/// events per target — and their order — are exactly those of the
/// pairwise dfs_paths, whose target subtrees contain no further arrivals
/// at that target; the products are therefore bit-equal.
void dfs_all_targets(const TrustGraph& g, std::size_t current,
                     std::size_t source, double path_trust,
                     std::size_t hops_left, std::vector<bool>& on_path,
                     std::vector<double>& complements,
                     const PropagationOptions& opts) {
  for (const auto& e : g.graph().out_edges(current)) {
    if (e.weight <= 0.0) continue;
    const double w = clamp_weight(e.weight, opts.clamp_to_unit);
    const double t = compose(path_trust, w, opts.concatenation);
    // A node already on the current path is neither an arrival (the
    // pairwise DFS only counts simple paths *ending* at the target) nor
    // a continuation; this also excludes the source (marked up front).
    if (on_path[e.to]) continue;
    complements[e.to] *= 1.0 - std::clamp(t, 0.0, 1.0);
    if (hops_left > 1) {
      on_path[e.to] = true;
      dfs_all_targets(g, e.to, source, t, hops_left - 1, on_path, complements,
                      opts);
      on_path[e.to] = false;
    }
  }
}

}  // namespace

std::optional<double> propagate_trust(const TrustGraph& g, std::size_t source,
                                      std::size_t target,
                                      const PropagationOptions& opts) {
  detail::require(source < g.size() && target < g.size(),
                  "propagate_trust: vertex out of range");
  detail::require(source != target, "propagate_trust: source == target");
  detail::require(opts.max_hops >= 1, "propagate_trust: max_hops must be >= 1");

  if (opts.aggregation == Aggregation::BestPath) {
    const std::vector<double> best = best_path_from(g, source, opts);
    if (best[target] < 0.0) return std::nullopt;
    return best[target];
  }
  // ProbabilisticOr over all simple paths up to the hop limit.
  double complement = 1.0;
  std::vector<bool> on_path(g.size(), false);
  on_path[source] = true;
  const double identity =
      opts.concatenation == Concatenation::Product
          ? 1.0
          : std::numeric_limits<double>::infinity();
  dfs_paths(g, source, target, identity, opts.max_hops, on_path, complement,
            opts);
  if (complement == 1.0) return std::nullopt;  // no path contributed
  return 1.0 - complement;
}

linalg::Matrix propagated_matrix(const TrustGraph& g,
                                 const PropagationOptions& opts) {
  const std::size_t n = g.size();
  linalg::Matrix m(n, n, 0.0);
  if (opts.aggregation == Aggregation::BestPath) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::vector<double> best = best_path_from(g, s, opts);
      for (std::size_t t = 0; t < n; ++t) {
        if (t != s && best[t] > 0.0) m(s, t) = best[t];
      }
    }
    return m;
  }
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t t = 0; t < n; ++t) {
      if (s == t) continue;
      const auto inferred = propagate_trust(g, s, t, opts);
      if (inferred) m(s, t) = *inferred;
    }
  }
  return m;
}

linalg::SparseMatrix propagated_sparse(const TrustGraph& g,
                                       const PropagationOptions& opts) {
  detail::require(opts.max_hops >= 1,
                  "propagated_sparse: max_hops must be >= 1");
  const std::size_t n = g.size();
  std::vector<linalg::Triplet> triplets;
  if (opts.aggregation == Aggregation::BestPath) {
    for (std::size_t s = 0; s < n; ++s) {
      const std::vector<double> best = best_path_from(g, s, opts);
      for (std::size_t t = 0; t < n; ++t) {
        if (t != s && best[t] > 0.0) triplets.push_back({s, t, best[t]});
      }
    }
    return linalg::SparseMatrix::from_triplets(n, n, std::move(triplets));
  }
  std::vector<double> complements(n, 1.0);
  std::vector<bool> on_path(n, false);
  for (std::size_t s = 0; s < n; ++s) {
    std::fill(complements.begin(), complements.end(), 1.0);
    on_path[s] = true;
    const double identity = opts.concatenation == Concatenation::Product
                                ? 1.0
                                : std::numeric_limits<double>::infinity();
    dfs_all_targets(g, s, s, identity, opts.max_hops, on_path, complements,
                    opts);
    on_path[s] = false;
    for (std::size_t t = 0; t < n; ++t) {
      // complement < 1 iff some path contributed (propagate_trust's
      // nullopt condition), and then 1 - complement > 0: every stored
      // entry is a reachable pair.
      if (t != s && complements[t] != 1.0) {
        triplets.push_back({s, t, 1.0 - complements[t]});
      }
    }
  }
  return linalg::SparseMatrix::from_triplets(n, n, std::move(triplets));
}

}  // namespace svo::trust
