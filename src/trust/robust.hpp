/// \file robust.hpp
/// Robust reputation aggregation — defenses that make the eigenvector
/// pipeline of Algorithm 2 survive the attack families of
/// trust/attack.hpp. Three independent, composable layers:
///
///  1. Rater-credibility weighting: each rater's influence in the power
///     iteration is scaled by exp(-strength * deviation), where
///     deviation is the mean absolute gap between the rater's (clamped)
///     reports and the per-trustee median consensus. Slanderers and
///     ballot-stuffers systematically disagree with the honest majority
///     and lose their voice.
///  2. Outlier-resistant trust-row aggregation: the per-trustee update
///     x_j <- sum_i w_i a_ij x_i is replaced by a trimmed or
///     median-of-means sum of the contributions, bounding what any small
///     coalition of raters can add to one trustee's score.
///  3. Re-entry quarantine: identities flagged as fresh (whitewashing
///     re-entries, sybils) have both their rater weight and their final
///     score multiplied by a prior < 1 until they age out.
///
/// All defenses sit behind `RobustOptions` inside `ReputationOptions`;
/// with `enabled == false` the engine runs the untouched literal
/// pipeline, bit for bit (tests/trust/robust_test.cpp enforces this).
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/power_method.hpp"
#include "linalg/sparse.hpp"
#include "trust/trust_graph.hpp"

namespace svo::trust {

/// How per-trustee incoming contributions are combined in the robust
/// power iteration.
enum class RowAggregation {
  /// Plain sum — the literal operator (useful to isolate the
  /// credibility/quarantine layers in ablations).
  Sum,
  /// linalg::trimmed_sum over the contributions.
  TrimmedMean,
  /// linalg::median_of_means_sum over the contributions.
  MedianOfMeans,
};

/// Defense configuration. Defaults are OFF: a default-constructed
/// ReputationOptions reproduces the paper's pipeline bit-identically.
struct RobustOptions {
  /// Master switch; false short-circuits to the literal engine.
  bool enabled = false;
  /// Layer 1: rater-credibility weighting.
  bool credibility_weighting = true;
  /// Credibility decay rate: w = exp(-strength * mean deviation).
  double credibility_strength = 6.0;
  /// Layer 2: robust per-trustee aggregation.
  RowAggregation aggregation = RowAggregation::TrimmedMean;
  /// Fraction trimmed per side (TrimmedMean), in [0, 0.5).
  double trim_fraction = 0.2;
  /// Bucket count (MedianOfMeans), >= 1.
  std::size_t mom_buckets = 3;
  /// Layer 3: multiplier in (0, 1] applied to fresh identities' rater
  /// weight and final score (1 = quarantine off).
  double quarantine_prior = 0.15;
  /// Fresh identities (GLOBAL GSP ids; coalition computations remap
  /// internally). Typically AttackInjector::fresh_identities() in
  /// simulations; in deployments, the identity ledger's recent joiners.
  std::vector<std::size_t> fresh;

  /// Throws InvalidArgument on out-of-range knobs.
  void validate() const;
};

/// Median consensus opinion about each of `members` (original GSP ids,
/// strictly increasing): median over the *clamped-to-[0,1]* direct
/// reports u_ij of the other members. Entries with no incoming report
/// are NaN ("no consensus"); callers must skip them.
[[nodiscard]] std::vector<double> consensus_opinions(
    const TrustGraph& g, const std::vector<std::size_t>& members);

/// Credibility weight per member-as-rater in (0, 1]:
/// exp(-strength * mean_j |clamp(u_ij) - consensus_j|) over the rater's
/// in-coalition reports with a defined consensus; raters with no such
/// reports keep weight 1.
[[nodiscard]] std::vector<double> rater_credibility(
    const TrustGraph& g, const std::vector<std::size_t>& members,
    double strength);

/// Power iteration with per-rater weights and robust per-trustee
/// aggregation. Mirrors linalg::power_method exactly (uniform start,
/// dangling rows spread uniformly, damping, L1-normalized iterates,
/// epsilon on successive-iterate L1 distance); with unit weights and
/// RowAggregation::Sum it computes the same fixed point. `weights` must
/// be positive and <= 1, one per row of `a`.
[[nodiscard]] linalg::PowerMethodResult robust_power_method(
    const linalg::Matrix& a, const std::vector<double>& weights,
    const linalg::PowerMethodOptions& power, RowAggregation aggregation,
    double trim_fraction, std::size_t mom_buckets);

/// Sparse twin of consensus_opinions: per-trustee median over the
/// clamped stored reports of `raw` = TrustGraph::raw_sparse(members).
/// Bit-identical to the dense overload on the same coalition — stored
/// entries are exactly the u > 0 reports, gathered in the same
/// rater-ascending order (DESIGN.md §4i).
[[nodiscard]] std::vector<double> consensus_opinions(
    const linalg::SparseMatrix& raw);

/// Sparse twin of rater_credibility; same bit-identity contract.
[[nodiscard]] std::vector<double> rater_credibility(
    const linalg::SparseMatrix& raw, double strength);

/// Sparse twin of robust_power_method over the normalized coalition CSR.
/// Contributions for trustee j are gathered from the transposed matrix's
/// row j in rater-ascending order — the dense loop's exact order — and
/// zero-valued contributions (x_i == 0) are *kept*, because they
/// participate in the trimmed / median-of-means order statistics.
/// Dangling raters hold no stored entries, so they are excluded
/// structurally, as the dense loop excludes them explicitly.
[[nodiscard]] linalg::PowerMethodResult robust_power_method(
    const linalg::SparseMatrix& a, const std::vector<double>& weights,
    const linalg::PowerMethodOptions& power, RowAggregation aggregation,
    double trim_fraction, std::size_t mom_buckets);

/// Normalized Kendall-tau distance between the rankings induced by two
/// equal-length score vectors: the fraction of strictly ordered pairs in
/// `reference` whose order is inverted in `other`, in [0, 1]. The
/// benchmark's "rank corruption of the reputation vector" metric
/// (0 = same ranking of every separated pair, 1 = fully reversed).
[[nodiscard]] double rank_corruption(const std::vector<double>& reference,
                                     const std::vector<double>& other);

}  // namespace svo::trust
