#include "trust/robust.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace svo::trust {

namespace {

double clamp01(double v) { return std::min(1.0, std::max(0.0, v)); }

double median_inplace(std::vector<double>& v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

}  // namespace

void RobustOptions::validate() const {
  detail::require(credibility_strength >= 0.0,
                  "RobustOptions: credibility_strength must be >= 0");
  detail::require(trim_fraction >= 0.0 && trim_fraction < 0.5,
                  "RobustOptions: trim_fraction must be in [0, 0.5)");
  detail::require(mom_buckets >= 1, "RobustOptions: mom_buckets must be >= 1");
  detail::require(quarantine_prior > 0.0 && quarantine_prior <= 1.0,
                  "RobustOptions: quarantine_prior must be in (0, 1]");
}

std::vector<double> consensus_opinions(
    const TrustGraph& g, const std::vector<std::size_t>& members) {
  const std::size_t c = members.size();
  std::vector<double> consensus(c,
                                std::numeric_limits<double>::quiet_NaN());
  std::vector<double> reports;
  for (std::size_t j = 0; j < c; ++j) {
    reports.clear();
    for (std::size_t i = 0; i < c; ++i) {
      if (i == j) continue;
      const double u = g.trust(members[i], members[j]);
      if (u > 0.0) reports.push_back(clamp01(u));
    }
    if (!reports.empty()) consensus[j] = median_inplace(reports);
  }
  return consensus;
}

std::vector<double> rater_credibility(const TrustGraph& g,
                                      const std::vector<std::size_t>& members,
                                      double strength) {
  detail::require(strength >= 0.0,
                  "rater_credibility: strength must be >= 0");
  const std::size_t c = members.size();
  const std::vector<double> consensus = consensus_opinions(g, members);
  std::vector<double> weights(c, 1.0);
  for (std::size_t i = 0; i < c; ++i) {
    double deviation = 0.0;
    std::size_t rated = 0;
    for (std::size_t j = 0; j < c; ++j) {
      if (i == j || std::isnan(consensus[j])) continue;
      const double u = g.trust(members[i], members[j]);
      if (u <= 0.0) continue;
      deviation += std::abs(clamp01(u) - consensus[j]);
      ++rated;
    }
    if (rated > 0) {
      weights[i] = std::exp(-strength * deviation / static_cast<double>(rated));
    }
  }
  return weights;
}

linalg::PowerMethodResult robust_power_method(
    const linalg::Matrix& a, const std::vector<double>& weights,
    const linalg::PowerMethodOptions& power, RowAggregation aggregation,
    double trim_fraction, std::size_t mom_buckets) {
  detail::require(a.rows() == a.cols(),
                  "robust_power_method: matrix must be square");
  detail::require(weights.size() == a.rows(),
                  "robust_power_method: one weight per rater row");
  power.validate();
  detail::require(trim_fraction >= 0.0 && trim_fraction < 0.5,
                  "robust_power_method: trim_fraction must be in [0, 0.5)");
  detail::require(mom_buckets >= 1,
                  "robust_power_method: mom_buckets must be >= 1");

  linalg::PowerMethodResult result;
  const std::size_t n = a.rows();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  std::vector<bool> dangling(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    detail::require(weights[i] > 0.0 && weights[i] <= 1.0,
                    "robust_power_method: weights must be in (0, 1]");
    double row_sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double v = a(i, j);
      detail::require(std::isfinite(v) && v >= 0.0,
                      "robust_power_method: matrix must be finite and "
                      "non-negative");
      row_sum += v;
    }
    dangling[i] = (row_sum <= 0.0);
  }

  const double d = power.damping;
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> y(n, 0.0);
  std::vector<double> contributions;

  for (std::size_t it = 0; it < power.max_iterations; ++it) {
    // Dangling raters spread their (credibility-weighted) mass
    // uniformly, exactly as the literal operator does.
    double dangling_mass = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (dangling[i]) dangling_mass += weights[i] * x[i];
    }
    for (std::size_t j = 0; j < n; ++j) {
      contributions.clear();
      for (std::size_t i = 0; i < n; ++i) {
        if (dangling[i]) continue;
        const double aij = a(i, j);
        if (aij <= 0.0) continue;
        contributions.push_back(weights[i] * x[i] * aij);
      }
      double agg = 0.0;
      switch (aggregation) {
        case RowAggregation::Sum:
          for (const double v : contributions) agg += v;
          break;
        case RowAggregation::TrimmedMean:
          agg = linalg::trimmed_sum(contributions, trim_fraction);
          break;
        case RowAggregation::MedianOfMeans:
          agg = linalg::median_of_means_sum(contributions, mom_buckets);
          break;
      }
      y[j] = (1.0 - d) * (agg + dangling_mass / static_cast<double>(n)) +
             d / static_cast<double>(n);
    }
    result.eigenvalue = linalg::norm_l1(y);
    if (!linalg::normalize_l1(y)) {
      std::fill(y.begin(), y.end(), 1.0 / static_cast<double>(n));
      result.iterations = it + 1;
      result.converged = false;
      result.eigenvector = std::move(y);
      return result;
    }
    const double delta = linalg::distance_l1(y, x);
    x.swap(y);
    result.iterations = it + 1;
    if (delta < power.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.eigenvector = std::move(x);
  return result;
}

std::vector<double> consensus_opinions(const linalg::SparseMatrix& raw) {
  detail::require(raw.rows() == raw.cols(),
                  "consensus_opinions: matrix must be square");
  const std::size_t c = raw.rows();
  std::vector<double> consensus(c, std::numeric_limits<double>::quiet_NaN());
  const linalg::SparseMatrix incoming = raw.transposed();
  std::vector<double> reports;
  for (std::size_t j = 0; j < c; ++j) {
    const linalg::SparseMatrix::RowView in = incoming.row(j);
    reports.clear();
    for (const double u : in.values) {
      if (u > 0.0) reports.push_back(clamp01(u));
    }
    if (!reports.empty()) consensus[j] = median_inplace(reports);
  }
  return consensus;
}

std::vector<double> rater_credibility(const linalg::SparseMatrix& raw,
                                      double strength) {
  detail::require(strength >= 0.0, "rater_credibility: strength must be >= 0");
  detail::require(raw.rows() == raw.cols(),
                  "rater_credibility: matrix must be square");
  const std::size_t c = raw.rows();
  const std::vector<double> consensus = consensus_opinions(raw);
  std::vector<double> weights(c, 1.0);
  for (std::size_t i = 0; i < c; ++i) {
    const linalg::SparseMatrix::RowView out = raw.row(i);
    double deviation = 0.0;
    std::size_t rated = 0;
    for (std::size_t k = 0; k < out.size(); ++k) {
      const double u = out.values[k];
      if (u <= 0.0 || std::isnan(consensus[out.cols[k]])) continue;
      deviation += std::abs(clamp01(u) - consensus[out.cols[k]]);
      ++rated;
    }
    if (rated > 0) {
      weights[i] = std::exp(-strength * deviation / static_cast<double>(rated));
    }
  }
  return weights;
}

linalg::PowerMethodResult robust_power_method(
    const linalg::SparseMatrix& a, const std::vector<double>& weights,
    const linalg::PowerMethodOptions& power, RowAggregation aggregation,
    double trim_fraction, std::size_t mom_buckets) {
  detail::require(a.rows() == a.cols(),
                  "robust_power_method: matrix must be square");
  detail::require(weights.size() == a.rows(),
                  "robust_power_method: one weight per rater row");
  power.validate();
  detail::require(trim_fraction >= 0.0 && trim_fraction < 0.5,
                  "robust_power_method: trim_fraction must be in [0, 0.5)");
  detail::require(mom_buckets >= 1,
                  "robust_power_method: mom_buckets must be >= 1");

  linalg::PowerMethodResult result;
  const std::size_t n = a.rows();
  if (n == 0) {
    result.converged = true;
    return result;
  }
  std::vector<std::size_t> dangling;  // empty rows, ascending
  for (std::size_t i = 0; i < n; ++i) {
    detail::require(weights[i] > 0.0 && weights[i] <= 1.0,
                    "robust_power_method: weights must be in (0, 1]");
    const linalg::SparseMatrix::RowView r = a.row(i);
    if (r.empty()) {
      dangling.push_back(i);
      continue;
    }
    for (const double v : r.values) {
      detail::require(v >= 0.0,
                      "robust_power_method: matrix must be non-negative");
    }
  }
  const linalg::SparseMatrix at = a.transposed();

  const double d = power.damping;
  std::vector<double> x(n, 1.0 / static_cast<double>(n));
  std::vector<double> y(n, 0.0);
  std::vector<double> contributions;

  for (std::size_t it = 0; it < power.max_iterations; ++it) {
    double dangling_mass = 0.0;
    for (const std::size_t i : dangling) dangling_mass += weights[i] * x[i];
    for (std::size_t j = 0; j < n; ++j) {
      const linalg::SparseMatrix::RowView in = at.row(j);
      contributions.clear();
      // Rater-ascending, x_i == 0 contributions kept: they take part in
      // the order statistics exactly as in the dense loop.
      for (std::size_t k = 0; k < in.size(); ++k) {
        const std::size_t i = in.cols[k];
        contributions.push_back(weights[i] * x[i] * in.values[k]);
      }
      double agg = 0.0;
      switch (aggregation) {
        case RowAggregation::Sum:
          for (const double v : contributions) agg += v;
          break;
        case RowAggregation::TrimmedMean:
          agg = linalg::trimmed_sum(contributions, trim_fraction);
          break;
        case RowAggregation::MedianOfMeans:
          agg = linalg::median_of_means_sum(contributions, mom_buckets);
          break;
      }
      y[j] = (1.0 - d) * (agg + dangling_mass / static_cast<double>(n)) +
             d / static_cast<double>(n);
    }
    result.eigenvalue = linalg::norm_l1(y);
    if (!linalg::normalize_l1(y)) {
      std::fill(y.begin(), y.end(), 1.0 / static_cast<double>(n));
      result.iterations = it + 1;
      result.converged = false;
      result.eigenvector = std::move(y);
      return result;
    }
    const double delta = linalg::distance_l1(y, x);
    x.swap(y);
    result.iterations = it + 1;
    if (delta < power.epsilon) {
      result.converged = true;
      break;
    }
  }
  result.eigenvector = std::move(x);
  return result;
}

double rank_corruption(const std::vector<double>& reference,
                       const std::vector<double>& other) {
  detail::require(reference.size() == other.size(),
                  "rank_corruption: size mismatch");
  const std::size_t n = reference.size();
  std::size_t ordered = 0;
  std::size_t inverted = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double ref = reference[i] - reference[j];
      if (ref == 0.0) continue;  // tie in the reference: no order to corrupt
      ++ordered;
      const double oth = other[i] - other[j];
      if (ref * oth < 0.0 || (oth == 0.0 && ref != 0.0)) {
        // Count a tie in `other` as half an inversion? No: a collapsed
        // pair has lost its order — count it fully, it is corruption.
        ++inverted;
      }
    }
  }
  return ordered == 0 ? 0.0
                      : static_cast<double>(inverted) /
                            static_cast<double>(ordered);
}

}  // namespace svo::trust
