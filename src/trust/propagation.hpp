/// \file propagation.hpp
/// Path-based trust propagation — the alternative reputation machinery
/// the paper surveys (Hang et al. [1]): when G_i has no direct trust
/// edge to G_j, infer one from trust paths using three operators:
///
///   concatenation: trust along a path (product or minimum of edges);
///   aggregation:   combining parallel paths (maximum or probabilistic
///                  co-occurrence 1 - prod(1 - t_p));
///   selection:     choosing which paths participate (best path only, or
///                  all simple paths up to a hop limit).
///
/// The paper's own mechanism uses the power method instead; this module
/// exists for the reputation-machinery ablation and for applications
/// that need pairwise (not global) trust estimates.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "trust/trust_graph.hpp"

namespace svo::trust {

/// How trust composes along one path.
enum class Concatenation {
  Product,  ///< multiplicative attenuation (requires weights in [0,1])
  Minimum,  ///< weakest-link semantics
};

/// How parallel paths combine.
enum class Aggregation {
  BestPath,       ///< the single strongest path (selection operator)
  ProbabilisticOr ///< 1 - prod(1 - t_p) over discovered paths
};

/// Options for propagation queries.
struct PropagationOptions {
  Concatenation concatenation = Concatenation::Product;
  Aggregation aggregation = Aggregation::BestPath;
  /// Maximum path length in hops (>= 1). Paths longer than this are not
  /// considered — trust transitivity weakens quickly with distance.
  std::size_t max_hops = 4;
  /// Edge weights are clamped into [0, 1] before composing (direct trust
  /// in this codebase is unbounded; propagation semantics need [0,1]).
  bool clamp_to_unit = true;
};

/// Inferred trust from `source` to `target`. Returns nullopt when no
/// path of at most max_hops exists. A direct edge participates as the
/// 1-hop path and competes with (or, under ProbabilisticOr, combines
/// with) indirect evidence. Throws InvalidArgument on out-of-range
/// vertices or source == target.
[[nodiscard]] std::optional<double> propagate_trust(
    const TrustGraph& g, std::size_t source, std::size_t target,
    const PropagationOptions& opts = {});

/// Dense matrix of direct-or-propagated trust for every ordered pair
/// (diagonal is zero). Entry (i, j) is 0 when j is unreachable from i
/// within the hop limit.
[[nodiscard]] linalg::Matrix propagated_matrix(
    const TrustGraph& g, const PropagationOptions& opts = {});

/// CSR twin of propagated_matrix: to_dense() of the result equals the
/// dense matrix entry for entry. Under ProbabilisticOr it runs ONE
/// hop-bounded simple-path DFS per source, accumulating every target's
/// complement along the way — the pairwise DFS's arrival events in the
/// same order (so bit-equal values), at 1/n of the traversals. The
/// matrix stores only reachable pairs, which is what makes propagation
/// usable on the sparse-regime graphs of DESIGN.md §4i.
[[nodiscard]] linalg::SparseMatrix propagated_sparse(
    const TrustGraph& g, const PropagationOptions& opts = {});

}  // namespace svo::trust
