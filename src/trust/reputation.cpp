#include "trust/reputation.hpp"

#include <algorithm>
#include <numeric>
#include <span>

#include "obs/trace.hpp"

namespace svo::trust {

namespace {

/// Shared telemetry tail for every reputation computation path.
void note_reputation(obs::Span& span, const char* mode,
                     const ReputationResult& r) {
  if (!span.active()) return;
  span.arg("mode", mode);
  span.arg("coalition", static_cast<double>(r.scores.size()));
  span.arg("iterations", static_cast<double>(r.iterations));
  span.arg("converged", r.converged ? 1.0 : 0.0);
  span.arg("avg_reputation", r.average);
  obs::MetricRegistry& m = obs::Recorder::instance().metrics();
  m.counter("trust.reputation.computes").add();
  m.counter("trust.reputation.power_iterations").add(r.iterations);
  if (!r.converged) m.counter("trust.reputation.nonconverged").add();
}

/// Cache fingerprint: two power-option sets produce interchangeable
/// results only when every knob matches (threads included — results are
/// identical across thread counts, but keeping the fingerprint strict
/// costs one cold start and removes a class of aliasing questions).
bool same_power(const linalg::PowerMethodOptions& a,
                const linalg::PowerMethodOptions& b) noexcept {
  return a.epsilon == b.epsilon && a.max_iterations == b.max_iterations &&
         a.damping == b.damping && a.threads == b.threads;
}

}  // namespace

void ReputationOptions::validate() const {
  power.validate();
  robust.validate();
  detail::require(!(robust.enabled && cache != nullptr),
                  "ReputationOptions: cache requires the standard "
                  "(non-robust) pipeline — the quarantine list varies per "
                  "round, so memoization would be incorrect");
}

bool ReputationEngine::use_sparse(std::size_t n) const noexcept {
  switch (opts_.backend) {
    case TrustBackend::Dense:
      return false;
    case TrustBackend::Sparse:
      return true;
    case TrustBackend::Auto:
      break;
  }
  return n > opts_.sparse_threshold;
}

ReputationResult ReputationEngine::from_matrix(const linalg::Matrix& a) const {
  obs::Span span("trust.reputation.compute", "trust");
  ReputationResult r;
  const linalg::PowerMethodResult pm = linalg::power_method(a, opts_.power);
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  r.average = average_reputation(r.scores);
  note_reputation(span, "standard", r);
  return r;
}

ReputationResult ReputationEngine::from_sparse(
    const linalg::SparseMatrix& a) const {
  obs::Span span("trust.reputation.compute", "trust");
  ReputationResult r;
  const linalg::PowerMethodResult pm =
      linalg::sparse_power_method(a, opts_.power);
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  r.average = average_reputation(r.scores);
  note_reputation(span, "sparse", r);
  return r;
}

ReputationResult ReputationEngine::full_sparse(const TrustGraph& g) const {
  ReputationCache* cache = opts_.cache;
  if (cache == nullptr) return from_sparse(g.normalized_sparse());

  obs::Span span("trust.reputation.compute", "trust");
  obs::MetricRegistry& m = obs::Recorder::instance().metrics();
  const bool keyed = cache->has_entry_ && cache->graph_uid_ == g.uid() &&
                     same_power(cache->power_, opts_.power);
  if (keyed && cache->graph_version_ == g.version()) {
    // Exact reuse: the compute is deterministic, so returning the memo
    // is bit-identical to re-running it.
    ++cache->stats_.exact_hits;
    note_reputation(span, "sparse-cached", cache->result_);
    if (span.active()) m.counter("trust.reputation.cache_exact_hits").add();
    return cache->result_;
  }

  std::span<const double> warm;
  if (keyed && cache->result_.converged &&
      cache->result_.scores.size() == g.size()) {
    const auto delta = g.edges_changed_since(cache->graph_version_);
    if (delta.has_value() && delta->size() <= opts_.warm_max_delta) {
      warm = cache->result_.scores;
    }
  }

  const linalg::PowerMethodResult pm =
      linalg::sparse_power_method(g.normalized_sparse(), opts_.power, warm);
  ReputationResult r;
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  r.average = average_reputation(r.scores);

  if (pm.warm_started) {
    ++cache->stats_.warm_starts;
    const std::size_t saved =
        cache->cold_iterations_ > pm.iterations
            ? cache->cold_iterations_ - pm.iterations
            : 0;
    cache->stats_.iterations_saved += saved;
    if (span.active()) {
      m.counter("trust.reputation.warm_starts").add();
      m.counter("trust.reputation.iterations_saved").add(saved);
    }
  } else {
    ++cache->stats_.cold_starts;
    cache->cold_iterations_ = pm.iterations;
    if (span.active()) m.counter("trust.reputation.cold_starts").add();
  }
  cache->has_entry_ = true;
  cache->graph_uid_ = g.uid();
  cache->graph_version_ = g.version();
  cache->power_ = opts_.power;
  cache->result_ = r;
  note_reputation(span, pm.warm_started ? "sparse-warm" : "sparse", r);
  return r;
}

ReputationResult ReputationEngine::compute_robust(
    const TrustGraph& g, const std::vector<std::size_t>& members) const {
  obs::Span span("trust.reputation.compute", "trust");
  opts_.robust.validate();
  const std::size_t c = members.size();
  const bool sparse = use_sparse(c);

  std::vector<double> weights(c, 1.0);
  if (opts_.robust.credibility_weighting) {
    weights = sparse ? rater_credibility(g.raw_sparse(members),
                                         opts_.robust.credibility_strength)
                     : rater_credibility(g, members,
                                         opts_.robust.credibility_strength);
  }
  // Quarantined (fresh) identities rate — and are scored — at a
  // discounted prior. `fresh` holds global GSP ids; remap to coalition
  // positions (members is strictly increasing, so binary search works).
  std::vector<std::size_t> fresh_pos;
  for (const std::size_t id : opts_.robust.fresh) {
    const auto it = std::lower_bound(members.begin(), members.end(), id);
    if (it != members.end() && *it == id) {
      fresh_pos.push_back(static_cast<std::size_t>(it - members.begin()));
    }
  }
  for (const std::size_t p : fresh_pos) {
    weights[p] *= opts_.robust.quarantine_prior;
  }

  const linalg::PowerMethodResult pm =
      sparse ? robust_power_method(g.normalized_sparse(members), weights,
                                   opts_.power, opts_.robust.aggregation,
                                   opts_.robust.trim_fraction,
                                   opts_.robust.mom_buckets)
             : robust_power_method(g.normalized_matrix(members), weights,
                                   opts_.power, opts_.robust.aggregation,
                                   opts_.robust.trim_fraction,
                                   opts_.robust.mom_buckets);

  ReputationResult r;
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  for (const std::size_t p : fresh_pos) {
    r.scores[p] *= opts_.robust.quarantine_prior;
  }
  if (!fresh_pos.empty()) {
    double sum = 0.0;
    for (const double s : r.scores) sum += s;
    if (sum > 0.0) {
      for (double& s : r.scores) s /= sum;
    }
  }
  r.average = average_reputation(r.scores);
  note_reputation(span, sparse ? "robust-sparse" : "robust", r);
  return r;
}

ReputationResult ReputationEngine::compute(const TrustGraph& g) const {
  opts_.validate();
  if (opts_.robust.enabled) {
    std::vector<std::size_t> all(g.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    return compute_robust(g, all);
  }
  if (use_sparse(g.size())) return full_sparse(g);
  return from_matrix(g.normalized_matrix());
}

ReputationResult ReputationEngine::compute(
    const TrustGraph& g, const std::vector<std::size_t>& members) const {
  opts_.validate();
  if (members.empty()) {
    ReputationResult r;
    r.converged = true;
    return r;
  }
  if (opts_.robust.enabled) return compute_robust(g, members);
  if (use_sparse(members.size())) {
    return from_sparse(g.normalized_sparse(members));
  }
  return from_matrix(g.normalized_matrix(members));
}

double average_reputation(const std::vector<double>& scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

}  // namespace svo::trust
