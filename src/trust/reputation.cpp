#include "trust/reputation.hpp"

#include <algorithm>
#include <numeric>

#include "obs/trace.hpp"

namespace svo::trust {

namespace {

/// Shared telemetry tail for every reputation computation path.
void note_reputation(obs::Span& span, const char* mode,
                     const ReputationResult& r) {
  if (!span.active()) return;
  span.arg("mode", mode);
  span.arg("coalition", static_cast<double>(r.scores.size()));
  span.arg("iterations", static_cast<double>(r.iterations));
  span.arg("converged", r.converged ? 1.0 : 0.0);
  span.arg("avg_reputation", r.average);
  obs::MetricRegistry& m = obs::Recorder::instance().metrics();
  m.counter("trust.reputation.computes").add();
  m.counter("trust.reputation.power_iterations").add(r.iterations);
  if (!r.converged) m.counter("trust.reputation.nonconverged").add();
}

}  // namespace

ReputationResult ReputationEngine::from_matrix(const linalg::Matrix& a) const {
  obs::Span span("trust.reputation.compute", "trust");
  ReputationResult r;
  const linalg::PowerMethodResult pm = linalg::power_method(a, opts_.power);
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  r.average = average_reputation(r.scores);
  note_reputation(span, "standard", r);
  return r;
}

ReputationResult ReputationEngine::compute_robust(
    const TrustGraph& g, const std::vector<std::size_t>& members) const {
  obs::Span span("trust.reputation.compute", "trust");
  opts_.robust.validate();
  const std::size_t c = members.size();

  std::vector<double> weights(c, 1.0);
  if (opts_.robust.credibility_weighting) {
    weights = rater_credibility(g, members, opts_.robust.credibility_strength);
  }
  // Quarantined (fresh) identities rate — and are scored — at a
  // discounted prior. `fresh` holds global GSP ids; remap to coalition
  // positions (members is strictly increasing, so binary search works).
  std::vector<std::size_t> fresh_pos;
  for (const std::size_t id : opts_.robust.fresh) {
    const auto it = std::lower_bound(members.begin(), members.end(), id);
    if (it != members.end() && *it == id) {
      fresh_pos.push_back(static_cast<std::size_t>(it - members.begin()));
    }
  }
  for (const std::size_t p : fresh_pos) {
    weights[p] *= opts_.robust.quarantine_prior;
  }

  const linalg::PowerMethodResult pm = robust_power_method(
      g.normalized_matrix(members), weights, opts_.power,
      opts_.robust.aggregation, opts_.robust.trim_fraction,
      opts_.robust.mom_buckets);

  ReputationResult r;
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  for (const std::size_t p : fresh_pos) {
    r.scores[p] *= opts_.robust.quarantine_prior;
  }
  if (!fresh_pos.empty()) {
    double sum = 0.0;
    for (const double s : r.scores) sum += s;
    if (sum > 0.0) {
      for (double& s : r.scores) s /= sum;
    }
  }
  r.average = average_reputation(r.scores);
  note_reputation(span, "robust", r);
  return r;
}

ReputationResult ReputationEngine::compute(const TrustGraph& g) const {
  if (opts_.robust.enabled) {
    std::vector<std::size_t> all(g.size());
    std::iota(all.begin(), all.end(), std::size_t{0});
    return compute_robust(g, all);
  }
  return from_matrix(g.normalized_matrix());
}

ReputationResult ReputationEngine::compute(
    const TrustGraph& g, const std::vector<std::size_t>& members) const {
  if (members.empty()) {
    ReputationResult r;
    r.converged = true;
    return r;
  }
  if (opts_.robust.enabled) return compute_robust(g, members);
  return from_matrix(g.normalized_matrix(members));
}

double average_reputation(const std::vector<double>& scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

}  // namespace svo::trust
