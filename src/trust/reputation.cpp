#include "trust/reputation.hpp"

namespace svo::trust {

ReputationResult ReputationEngine::from_matrix(const linalg::Matrix& a) const {
  ReputationResult r;
  const linalg::PowerMethodResult pm = linalg::power_method(a, opts_.power);
  r.scores = pm.eigenvector;
  r.iterations = pm.iterations;
  r.converged = pm.converged;
  r.average = average_reputation(r.scores);
  return r;
}

ReputationResult ReputationEngine::compute(const TrustGraph& g) const {
  return from_matrix(g.normalized_matrix());
}

ReputationResult ReputationEngine::compute(
    const TrustGraph& g, const std::vector<std::size_t>& members) const {
  if (members.empty()) {
    ReputationResult r;
    r.converged = true;
    return r;
  }
  return from_matrix(g.normalized_matrix(members));
}

double average_reputation(const std::vector<double>& scores) {
  if (scores.empty()) return 0.0;
  double sum = 0.0;
  for (double s : scores) sum += s;
  return sum / static_cast<double>(scores.size());
}

}  // namespace svo::trust
