/// \file attack.hpp
/// Adversarial perturbation of trust reports — the canonical attack
/// families against reputation systems (badmouthing, ballot-stuffing
/// collusion rings, on-off oscillation, whitewashing via identity
/// re-entry, Sybil amplification), injected deterministically into a
/// `TrustGraph`.
///
/// The paper's mechanism (and this repo's `ReputationEngine`) assumes
/// every trust report is honest; a colluding ring can therefore steer VO
/// formation toward its own members. The injector makes that threat
/// model explicit and reproducible: an `AttackScenario` is a pure value
/// (type, attacker fraction, intensity, seed), and
/// `AttackInjector::apply` perturbs a graph bit-identically for the same
/// (scenario, round) on every run and platform. Defenses live in
/// trust/robust.hpp; the closed-loop harness that couples the two is
/// sim/adversary.hpp.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "trust/trust_graph.hpp"

namespace svo::trust {

/// Canonical attack families (taxonomy per the robust-reputation
/// literature: FRTRUST, TrustGuard, EigenTrust's threat models).
enum class AttackType {
  /// No perturbation; scenarios default to this.
  None,
  /// Attackers slander honest GSPs: every attacker->honest trust report
  /// is scaled down by `intensity` (an edge driven to ~0 is removed —
  /// the paper equates u_ij = 0 with complete distrust).
  Badmouthing,
  /// Collusion ring mutual praise: every attacker->attacker report is
  /// raised to intensity * cap, where cap is max(1, largest weight in
  /// the graph) so the stuffed ballots always compete with honest ones.
  BallotStuffing,
  /// Ballot stuffing + badmouthing combined — the strongest stationary
  /// ring, and the family the resilience acceptance gate sweeps.
  Collusion,
  /// Oscillating ("on-off") behavior: the ring colludes only on rounds
  /// where (round % period) < ceil(period / 2) and looks honest
  /// otherwise, defeating naive long-horizon averaging.
  OnOff,
  /// Whitewashing by identity re-entry: each attacker periodically
  /// discards its identity; on re-entry every report to and from it is
  /// reset to `reentry_trust` (the newcomer prior), shedding whatever
  /// bad reputation its behavior had earned.
  Whitewashing,
  /// Sybil amplification: the attacker set splits into masters and
  /// sybil supporters; each sybil concentrates its (stuffed) trust on
  /// its master and fellow sybils, multiplying one identity's voice.
  Sybil,
};

/// Human-readable name ("badmouthing", "collusion", ...).
[[nodiscard]] const char* to_string(AttackType type) noexcept;

/// Inverse of to_string; throws InvalidArgument on an unknown name.
[[nodiscard]] AttackType attack_type_from_string(std::string_view name);

/// A fully specified attack, as a pure value. Same scenario + same round
/// => bit-identical perturbation (tests/trust/attack_test.cpp).
struct AttackScenario {
  AttackType type = AttackType::None;
  /// Fraction of the GSP population controlled by the adversary; the
  /// attacker set is round(fraction * m) GSPs sampled by `seed`.
  double attacker_fraction = 0.0;
  /// Attack strength in (0, 1]: how hard reports are pushed (ballot
  /// weight, slander depth, sybil concentration).
  double intensity = 1.0;
  /// Drives attacker selection (and nothing else: perturbations are
  /// deterministic functions of the attacker set and the round).
  std::uint64_t seed = 0;
  /// OnOff: oscillation period in rounds (>= 2).
  std::size_t period = 4;
  /// Whitewashing: rounds between one attacker's identity re-entries
  /// (>= 2; re-entries are staggered across attackers).
  std::size_t reentry_interval = 4;
  /// Whitewashing: the newcomer prior a re-entered identity is reset to.
  double reentry_trust = 0.5;
  /// Sybil: supporters amplifying each master.
  std::size_t sybils_per_master = 3;

  /// True when applying the scenario is a no-op.
  [[nodiscard]] bool empty() const noexcept {
    return type == AttackType::None || attacker_fraction <= 0.0;
  }
  /// Throws InvalidArgument on out-of-range knobs (fraction outside
  /// [0,1], intensity outside (0,1], period/interval < 2, non-finite or
  /// negative reentry_trust).
  void validate() const;
};

/// What one `apply` call did (drives the benchmark's bookkeeping and the
/// quarantine defense's freshness feed).
struct AttackRound {
  /// Whether any perturbation was applied (false on OnOff off-rounds
  /// and when the scenario is empty).
  bool active = false;
  /// Trust reports written (set_trust calls, including removals).
  std::size_t edges_touched = 0;
  /// Identities that re-entered this round (Whitewashing only).
  std::vector<std::size_t> reentered;
};

/// Applies an `AttackScenario` to trust graphs, round by round.
class AttackInjector {
 public:
  /// Selects the attacker set for a population of `num_gsps` GSPs.
  /// Validates the scenario.
  AttackInjector(AttackScenario scenario, std::size_t num_gsps);

  [[nodiscard]] const AttackScenario& scenario() const noexcept {
    return scenario_;
  }
  /// Attacker GSP ids, strictly increasing.
  [[nodiscard]] const std::vector<std::size_t>& attackers() const noexcept {
    return attackers_;
  }
  [[nodiscard]] bool is_attacker(std::size_t g) const;
  /// Sybil masters / supporters (empty unless type == Sybil).
  [[nodiscard]] const std::vector<std::size_t>& masters() const noexcept {
    return masters_;
  }

  /// Perturb `reported` in place for `round`. Deterministic in
  /// (scenario, round): no hidden state, so two injectors built from the
  /// same scenario produce bit-identical graphs in any call order.
  AttackRound apply(TrustGraph& reported, std::size_t round) const;

  /// Identities that re-entered within the last `quarantine_rounds`
  /// rounds as of `round` (Whitewashing), plus all sybil supporters
  /// (Sybil — sybils are newly minted identities by construction).
  /// Feed this into RobustOptions::fresh. Strictly increasing.
  [[nodiscard]] std::vector<std::size_t> fresh_identities(
      std::size_t round, std::size_t quarantine_rounds) const;

 private:
  void badmouth(TrustGraph& g, AttackRound& report) const;
  void stuff_ballots(TrustGraph& g, AttackRound& report) const;
  void whitewash(TrustGraph& g, std::size_t round, AttackRound& report) const;
  void sybil_amplify(TrustGraph& g, AttackRound& report) const;
  /// Round of attacker #idx's most recent re-entry at or before `round`,
  /// or SIZE_MAX when it has not re-entered yet.
  [[nodiscard]] std::size_t last_reentry(std::size_t idx,
                                         std::size_t round) const;

  AttackScenario scenario_;
  std::size_t m_ = 0;
  std::vector<std::size_t> attackers_;
  std::vector<bool> attacker_mask_;
  std::vector<std::size_t> masters_;
  /// master_of_[i] = master GSP id of sybil attackers_[i]; SIZE_MAX for
  /// masters and non-Sybil scenarios.
  std::vector<std::size_t> master_of_;
};

}  // namespace svo::trust
