#include "trust/attack.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace svo::trust {

namespace {

/// Ballot ceiling: stuffed reports must compete with the largest honest
/// weight actually present in the graph (weights are unbounded above in
/// the model, so a fixed 1.0 could be drowned out).
double ballot_cap(const TrustGraph& g) {
  double cap = 1.0;
  for (std::size_t v = 0; v < g.size(); ++v) {
    for (const graph::Edge& e : g.graph().out_edges(v)) {
      cap = std::max(cap, e.weight);
    }
  }
  return cap;
}

/// Below this, a slandered report is written as 0 (edge removal —
/// complete distrust), keeping graphs free of denormal litter.
constexpr double kSlanderFloor = 1e-12;

}  // namespace

const char* to_string(AttackType type) noexcept {
  switch (type) {
    case AttackType::None: return "none";
    case AttackType::Badmouthing: return "badmouthing";
    case AttackType::BallotStuffing: return "ballot-stuffing";
    case AttackType::Collusion: return "collusion";
    case AttackType::OnOff: return "on-off";
    case AttackType::Whitewashing: return "whitewashing";
    case AttackType::Sybil: return "sybil";
  }
  return "unknown";
}

AttackType attack_type_from_string(std::string_view name) {
  for (const AttackType t :
       {AttackType::None, AttackType::Badmouthing, AttackType::BallotStuffing,
        AttackType::Collusion, AttackType::OnOff, AttackType::Whitewashing,
        AttackType::Sybil}) {
    if (name == to_string(t)) return t;
  }
  throw InvalidArgument("attack_type_from_string: unknown attack type '" +
                        std::string(name) + "'");
}

void AttackScenario::validate() const {
  detail::require(attacker_fraction >= 0.0 && attacker_fraction <= 1.0,
                  "AttackScenario: attacker_fraction must be in [0,1]");
  if (empty()) return;
  detail::require(intensity > 0.0 && intensity <= 1.0,
                  "AttackScenario: intensity must be in (0,1]");
  detail::require(period >= 2, "AttackScenario: period must be >= 2");
  detail::require(reentry_interval >= 2,
                  "AttackScenario: reentry_interval must be >= 2");
  detail::require(std::isfinite(reentry_trust) && reentry_trust >= 0.0,
                  "AttackScenario: reentry_trust must be finite and >= 0");
  detail::require(sybils_per_master >= 1,
                  "AttackScenario: sybils_per_master must be >= 1");
}

AttackInjector::AttackInjector(AttackScenario scenario, std::size_t num_gsps)
    : scenario_(scenario), m_(num_gsps) {
  scenario_.validate();
  attacker_mask_.assign(m_, false);
  if (scenario_.empty()) return;

  // Attacker selection is the only randomized step: a seeded shuffle of
  // the population, truncated to round(fraction * m). Everything apply()
  // does afterwards is a deterministic function of (attacker set, round).
  const std::size_t k = std::min(
      m_, static_cast<std::size_t>(
              scenario_.attacker_fraction * static_cast<double>(m_) + 0.5));
  std::vector<std::size_t> ids(m_);
  std::iota(ids.begin(), ids.end(), std::size_t{0});
  util::Xoshiro256 rng(util::derive_seed(scenario_.seed, 0x5E1EC7));
  rng.shuffle(ids);
  attackers_.assign(ids.begin(), ids.begin() + k);
  std::sort(attackers_.begin(), attackers_.end());
  for (const std::size_t a : attackers_) attacker_mask_[a] = true;

  master_of_.assign(attackers_.size(), SIZE_MAX);
  if (scenario_.type == AttackType::Sybil) {
    // Split the ring into masters and their supporters: every
    // (sybils_per_master + 1)-th attacker anchors a new sybil group.
    std::size_t current_master = SIZE_MAX;
    for (std::size_t i = 0; i < attackers_.size(); ++i) {
      if (i % (scenario_.sybils_per_master + 1) == 0) {
        current_master = attackers_[i];
        masters_.push_back(current_master);
      } else {
        master_of_[i] = current_master;
      }
    }
  }
}

bool AttackInjector::is_attacker(std::size_t g) const {
  detail::require(g < m_, "AttackInjector: GSP out of range");
  return attacker_mask_[g];
}

void AttackInjector::badmouth(TrustGraph& g, AttackRound& report) const {
  for (const std::size_t a : attackers_) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (j == a || attacker_mask_[j]) continue;
      const double u = g.trust(a, j);
      if (u <= 0.0) continue;  // absence already is complete distrust
      const double slandered = u * (1.0 - scenario_.intensity);
      g.set_trust(a, j, slandered < kSlanderFloor ? 0.0 : slandered);
      ++report.edges_touched;
    }
  }
}

void AttackInjector::stuff_ballots(TrustGraph& g, AttackRound& report) const {
  const double w = ballot_cap(g) * scenario_.intensity;
  for (const std::size_t a : attackers_) {
    for (const std::size_t b : attackers_) {
      if (a == b || g.trust(a, b) >= w) continue;
      g.set_trust(a, b, w);
      ++report.edges_touched;
    }
  }
}

std::size_t AttackInjector::last_reentry(std::size_t idx,
                                         std::size_t round) const {
  // Attacker #idx re-enters at rounds r >= 1 with (r + idx) % interval == 0
  // (staggered so the whole ring never resets at once).
  const std::size_t interval = scenario_.reentry_interval;
  const std::size_t r = round - (round + idx) % interval;
  return (r >= 1 && r <= round) ? r : SIZE_MAX;
}

void AttackInjector::whitewash(TrustGraph& g, std::size_t round,
                               AttackRound& report) const {
  for (std::size_t idx = 0; idx < attackers_.size(); ++idx) {
    if (round == 0 || (round + idx) % scenario_.reentry_interval != 0) {
      continue;
    }
    // Identity re-entry: the population cannot link the fresh identity
    // to its history, so every report to and from it resets to the
    // newcomer prior.
    const std::size_t a = attackers_[idx];
    for (std::size_t i = 0; i < m_; ++i) {
      if (i == a) continue;
      g.set_trust(i, a, scenario_.reentry_trust);
      g.set_trust(a, i, scenario_.reentry_trust);
      report.edges_touched += 2;
    }
    report.reentered.push_back(a);
  }
}

void AttackInjector::sybil_amplify(TrustGraph& g, AttackRound& report) const {
  const double w = ballot_cap(g) * scenario_.intensity;
  for (std::size_t i = 0; i < attackers_.size(); ++i) {
    const std::size_t master = master_of_[i];
    if (master == SIZE_MAX) continue;  // masters do not vote for themselves
    const std::size_t s = attackers_[i];
    // Concentrate the sybil's row on its group: full ballot for the
    // master, half for fellow supporters, slander everyone else.
    if (g.trust(s, master) < w) {
      g.set_trust(s, master, w);
      ++report.edges_touched;
    }
    for (std::size_t j = 0; j < attackers_.size(); ++j) {
      if (j == i || master_of_[j] != master) continue;
      const std::size_t t = attackers_[j];
      if (g.trust(s, t) < 0.5 * w) {
        g.set_trust(s, t, 0.5 * w);
        ++report.edges_touched;
      }
    }
    for (std::size_t j = 0; j < m_; ++j) {
      if (j == s || attacker_mask_[j]) continue;
      const double u = g.trust(s, j);
      if (u <= 0.0) continue;
      const double reduced = u * (1.0 - scenario_.intensity);
      g.set_trust(s, j, reduced < kSlanderFloor ? 0.0 : reduced);
      ++report.edges_touched;
    }
  }
}

AttackRound AttackInjector::apply(TrustGraph& reported,
                                  std::size_t round) const {
  detail::require(reported.size() == m_,
                  "AttackInjector::apply: graph size != population size");
  AttackRound report;
  if (scenario_.empty() || attackers_.empty()) return report;
  switch (scenario_.type) {
    case AttackType::None:
      return report;
    case AttackType::Badmouthing:
      badmouth(reported, report);
      break;
    case AttackType::BallotStuffing:
      stuff_ballots(reported, report);
      break;
    case AttackType::Collusion:
      stuff_ballots(reported, report);
      badmouth(reported, report);
      break;
    case AttackType::OnOff:
      // Collude on the first ceil(period/2) rounds of each period, then
      // behave until the window comes around again.
      if (round % scenario_.period < (scenario_.period + 1) / 2) {
        stuff_ballots(reported, report);
        badmouth(reported, report);
      } else {
        return report;  // active stays false
      }
      break;
    case AttackType::Whitewashing:
      whitewash(reported, round, report);
      break;
    case AttackType::Sybil:
      sybil_amplify(reported, report);
      break;
  }
  report.active = true;
  return report;
}

std::vector<std::size_t> AttackInjector::fresh_identities(
    std::size_t round, std::size_t quarantine_rounds) const {
  std::vector<std::size_t> fresh;
  if (scenario_.empty()) return fresh;
  if (scenario_.type == AttackType::Sybil) {
    for (std::size_t i = 0; i < attackers_.size(); ++i) {
      if (master_of_[i] != SIZE_MAX) fresh.push_back(attackers_[i]);
    }
    return fresh;  // attackers_ is sorted, so fresh is too
  }
  if (scenario_.type != AttackType::Whitewashing) return fresh;
  for (std::size_t idx = 0; idx < attackers_.size(); ++idx) {
    const std::size_t lr = last_reentry(idx, round);
    if (lr != SIZE_MAX && round - lr < quarantine_rounds) {
      fresh.push_back(attackers_[idx]);
    }
  }
  return fresh;
}

}  // namespace svo::trust
