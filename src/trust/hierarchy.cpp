#include "trust/hierarchy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "obs/trace.hpp"

namespace svo::trust {

ReputationHierarchy::ReputationHierarchy(std::size_t organizations,
                                         HierarchyAggregation aggregation)
    : entities_(organizations), aggregation_(aggregation) {
  detail::require(organizations > 0,
                  "ReputationHierarchy: need at least one organization");
}

std::size_t ReputationHierarchy::add_entity(std::size_t org, Entity entity) {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  detail::require(entity.reputation >= 0.0 && entity.reputation <= 1.0,
                  "ReputationHierarchy: reputation must be in [0,1]");
  detail::require(entity.weight > 0.0,
                  "ReputationHierarchy: weight must be > 0");
  entities_[org].push_back(std::move(entity));
  return entities_[org].size() - 1;
}

const std::vector<Entity>& ReputationHierarchy::entities(
    std::size_t org) const {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  return entities_[org];
}

void ReputationHierarchy::record_entity_outcome(std::size_t org,
                                                std::size_t entity,
                                                double outcome, double rate) {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  detail::require(entity < entities_[org].size(),
                  "ReputationHierarchy: entity out of range");
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "ReputationHierarchy: outcome must be in [0,1]");
  detail::require(rate > 0.0 && rate <= 1.0,
                  "ReputationHierarchy: rate must be in (0,1]");
  Entity& e = entities_[org][entity];
  e.reputation = (1.0 - rate) * e.reputation + rate * outcome;
}

double ReputationHierarchy::aggregate(const std::vector<double>& scores,
                                      const std::vector<double>& weights) const {
  if (scores.empty()) return 0.0;
  switch (aggregation_) {
    case HierarchyAggregation::WeightedMean: {
      double num = 0.0;
      double den = 0.0;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        num += weights[i] * scores[i];
        den += weights[i];
      }
      return den > 0.0 ? num / den : 0.0;
    }
    case HierarchyAggregation::Minimum: {
      double lo = scores.front();
      for (const double s : scores) lo = std::min(lo, s);
      return lo;
    }
    case HierarchyAggregation::Geometric: {
      // Weighted geometric mean; a zero score annihilates (by design —
      // one dead resource should matter under this policy).
      double log_sum = 0.0;
      double den = 0.0;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] <= 0.0) return 0.0;
        log_sum += weights[i] * std::log(scores[i]);
        den += weights[i];
      }
      return den > 0.0 ? std::exp(log_sum / den) : 0.0;
    }
  }
  return 0.0;
}

double ReputationHierarchy::organization_reputation(std::size_t org) const {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  std::vector<double> scores;
  std::vector<double> weights;
  scores.reserve(entities_[org].size());
  weights.reserve(entities_[org].size());
  for (const Entity& e : entities_[org]) {
    scores.push_back(e.reputation);
    weights.push_back(e.weight);
  }
  return aggregate(scores, weights);
}

std::vector<double> ReputationHierarchy::organization_reputations() const {
  std::vector<double> out(organizations());
  for (std::size_t org = 0; org < organizations(); ++org) {
    out[org] = organization_reputation(org);
  }
  return out;
}

double ReputationHierarchy::vo_reputation(game::Coalition vo) const {
  std::vector<double> scores;
  std::vector<double> weights;
  for (const std::size_t org : vo.members()) {
    detail::require(org < organizations(),
                    "ReputationHierarchy: VO member out of range");
    scores.push_back(organization_reputation(org));
    double total_weight = 0.0;
    for (const Entity& e : entities_[org]) total_weight += e.weight;
    weights.push_back(total_weight > 0.0 ? total_weight : 1e-12);
  }
  return aggregate(scores, weights);
}

ClusteredResult clustered_reputation(const TrustGraph& g,
                                     const std::vector<std::size_t>& assignment,
                                     const ReputationOptions& opts) {
  opts.validate();
  detail::require(opts.cache == nullptr,
                  "clustered_reputation: cache not supported — the "
                  "intermediate graphs are rebuilt per call");
  detail::require(assignment.size() == g.size(),
                  "clustered_reputation: one cluster id per GSP");
  obs::Span span("trust.hierarchy.clustered", "trust");

  ClusteredResult result;
  const std::size_t n = g.size();
  if (n == 0) return result;
  std::size_t clusters = 0;
  for (const std::size_t c : assignment) clusters = std::max(clusters, c + 1);
  result.clusters = clusters;

  // Cluster membership, ascending GSP ids within each cluster.
  std::vector<std::vector<std::size_t>> members(clusters);
  for (std::size_t i = 0; i < n; ++i) members[assignment[i]].push_back(i);

  const ReputationEngine engine(opts);

  // Level 1: each non-empty cluster on its induced subgraph.
  std::vector<double> within(n, 0.0);
  for (std::size_t c = 0; c < clusters; ++c) {
    if (members[c].empty()) continue;
    const ReputationResult r = engine.compute(g, members[c]);
    result.iterations += r.iterations;
    result.converged = result.converged && r.converged;
    for (std::size_t k = 0; k < members[c].size(); ++k) {
      within[members[c][k]] = r.scores[k];
    }
  }

  // Level 2: cluster-level rollup. Edge (a, b) sums every trust edge
  // from cluster a into cluster b, accumulated in global edge-scan
  // order (deterministic for a given graph).
  std::unordered_map<std::size_t, double> rollup;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t a = assignment[i];
    for (const graph::Edge& e : g.graph().out_edges(i)) {
      const std::size_t b = assignment[e.to];
      if (a == b) continue;
      rollup[a * clusters + b] += e.weight;
    }
  }
  TrustGraph cluster_graph(clusters);
  std::vector<std::size_t> keys;
  keys.reserve(rollup.size());
  for (const auto& [key, w] : rollup) keys.push_back(key);
  std::sort(keys.begin(), keys.end());
  for (const std::size_t key : keys) {
    cluster_graph.set_trust(key / clusters, key % clusters, rollup[key]);
  }
  const ReputationResult cr = engine.compute(cluster_graph);
  result.cluster_scores = cr.scores;
  result.iterations += cr.iterations;
  result.converged = result.converged && cr.converged;

  // Final: cluster mass times within-cluster share, renormalized.
  result.scores.resize(n, 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    result.scores[i] = result.cluster_scores[assignment[i]] * within[i];
    sum += result.scores[i];
  }
  if (sum > 0.0) {
    for (double& s : result.scores) s /= sum;
  }

  if (span.active()) {
    span.arg("n", static_cast<double>(n));
    span.arg("clusters", static_cast<double>(clusters));
    span.arg("iterations", static_cast<double>(result.iterations));
    span.arg("converged", result.converged ? 1.0 : 0.0);
    obs::MetricRegistry& m = obs::Recorder::instance().metrics();
    m.counter("trust.hierarchy.clustered_computes").add();
    m.counter("trust.hierarchy.cluster_solves").add(clusters + 1);
  }
  return result;
}

}  // namespace svo::trust
