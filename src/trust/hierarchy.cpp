#include "trust/hierarchy.hpp"

#include <cmath>

namespace svo::trust {

ReputationHierarchy::ReputationHierarchy(std::size_t organizations,
                                         HierarchyAggregation aggregation)
    : entities_(organizations), aggregation_(aggregation) {
  detail::require(organizations > 0,
                  "ReputationHierarchy: need at least one organization");
}

std::size_t ReputationHierarchy::add_entity(std::size_t org, Entity entity) {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  detail::require(entity.reputation >= 0.0 && entity.reputation <= 1.0,
                  "ReputationHierarchy: reputation must be in [0,1]");
  detail::require(entity.weight > 0.0,
                  "ReputationHierarchy: weight must be > 0");
  entities_[org].push_back(std::move(entity));
  return entities_[org].size() - 1;
}

const std::vector<Entity>& ReputationHierarchy::entities(
    std::size_t org) const {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  return entities_[org];
}

void ReputationHierarchy::record_entity_outcome(std::size_t org,
                                                std::size_t entity,
                                                double outcome, double rate) {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  detail::require(entity < entities_[org].size(),
                  "ReputationHierarchy: entity out of range");
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "ReputationHierarchy: outcome must be in [0,1]");
  detail::require(rate > 0.0 && rate <= 1.0,
                  "ReputationHierarchy: rate must be in (0,1]");
  Entity& e = entities_[org][entity];
  e.reputation = (1.0 - rate) * e.reputation + rate * outcome;
}

double ReputationHierarchy::aggregate(const std::vector<double>& scores,
                                      const std::vector<double>& weights) const {
  if (scores.empty()) return 0.0;
  switch (aggregation_) {
    case HierarchyAggregation::WeightedMean: {
      double num = 0.0;
      double den = 0.0;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        num += weights[i] * scores[i];
        den += weights[i];
      }
      return den > 0.0 ? num / den : 0.0;
    }
    case HierarchyAggregation::Minimum: {
      double lo = scores.front();
      for (const double s : scores) lo = std::min(lo, s);
      return lo;
    }
    case HierarchyAggregation::Geometric: {
      // Weighted geometric mean; a zero score annihilates (by design —
      // one dead resource should matter under this policy).
      double log_sum = 0.0;
      double den = 0.0;
      for (std::size_t i = 0; i < scores.size(); ++i) {
        if (scores[i] <= 0.0) return 0.0;
        log_sum += weights[i] * std::log(scores[i]);
        den += weights[i];
      }
      return den > 0.0 ? std::exp(log_sum / den) : 0.0;
    }
  }
  return 0.0;
}

double ReputationHierarchy::organization_reputation(std::size_t org) const {
  detail::require(org < organizations(),
                  "ReputationHierarchy: organization out of range");
  std::vector<double> scores;
  std::vector<double> weights;
  scores.reserve(entities_[org].size());
  weights.reserve(entities_[org].size());
  for (const Entity& e : entities_[org]) {
    scores.push_back(e.reputation);
    weights.push_back(e.weight);
  }
  return aggregate(scores, weights);
}

std::vector<double> ReputationHierarchy::organization_reputations() const {
  std::vector<double> out(organizations());
  for (std::size_t org = 0; org < organizations(); ++org) {
    out[org] = organization_reputation(org);
  }
  return out;
}

double ReputationHierarchy::vo_reputation(game::Coalition vo) const {
  std::vector<double> scores;
  std::vector<double> weights;
  for (const std::size_t org : vo.members()) {
    detail::require(org < organizations(),
                    "ReputationHierarchy: VO member out of range");
    scores.push_back(organization_reputation(org));
    double total_weight = 0.0;
    for (const Entity& e : entities_[org]) total_weight += e.weight;
    weights.push_back(total_weight > 0.0 ? total_weight : 1e-12);
  }
  return aggregate(scores, weights);
}

}  // namespace svo::trust
