/// \file beta.hpp
/// Beta reputation system (Jøsang & Ismail) — the evidence-counting
/// alternative to the paper's eigenvector reputation. Each ordered pair
/// (observer, subject) accumulates positive and negative interaction
/// evidence; the pairwise trust estimate is the Beta-posterior mean
/// (r + 1) / (r + s + 2), and a subject's reputation pools the evidence
/// of all observers. Useful when interactions are countable outcomes
/// rather than asserted weights, and convertible into a TrustGraph so
/// the unchanged TVOF machinery can run on top of it.
#pragma once

#include <cstddef>
#include <vector>

#include "trust/trust_graph.hpp"

namespace svo::trust {

/// Evidence-based reputation over m GSPs.
class BetaReputationSystem {
 public:
  explicit BetaReputationSystem(std::size_t m);

  [[nodiscard]] std::size_t size() const noexcept {
    return positive_.size();
  }

  /// Record one interaction outcome observed by `observer` about
  /// `subject`: weight in (0, 1] counts fractional evidence (e.g. the
  /// delivered fraction of assigned work and its complement).
  void record(std::size_t observer, std::size_t subject, bool positive,
              double weight = 1.0);

  /// Record a graded outcome in [0, 1]: adds `outcome` positive and
  /// `1 - outcome` negative evidence.
  void record_graded(std::size_t observer, std::size_t subject,
                     double outcome);

  /// Pairwise Beta-posterior mean (r+1)/(r+s+2); 0.5 with no evidence.
  [[nodiscard]] double pairwise(std::size_t observer,
                                std::size_t subject) const;

  /// Subject reputation pooling every observer's evidence.
  [[nodiscard]] double reputation(std::size_t subject) const;

  /// All subject reputations.
  [[nodiscard]] std::vector<double> reputations() const;

  /// Total evidence mass (r + s) held about a subject — the confidence
  /// behind its reputation.
  [[nodiscard]] double evidence(std::size_t subject) const;

  /// Age all evidence by `factor` in [0, 1) (multiplicative forgetting;
  /// Jøsang's longevity factor). factor = 0 erases history.
  void discount(double factor);

  /// Materialize pairwise estimates as a TrustGraph (edges only where
  /// evidence exists), ready for the reputation engine / mechanisms.
  [[nodiscard]] TrustGraph to_trust_graph() const;

 private:
  void check(std::size_t observer, std::size_t subject) const;

  // Row-major m x m evidence matrices (diagonal unused).
  std::vector<double> positive_;
  std::vector<double> negative_;
  std::size_t m_ = 0;

  [[nodiscard]] std::size_t idx(std::size_t i, std::size_t j) const noexcept {
    return i * m_ + j;
  }
};

}  // namespace svo::trust
