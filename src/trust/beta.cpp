#include "trust/beta.hpp"

namespace svo::trust {

BetaReputationSystem::BetaReputationSystem(std::size_t m)
    : positive_(m * m, 0.0), negative_(m * m, 0.0), m_(m) {
  detail::require(m > 0, "BetaReputationSystem: need at least one GSP");
}

void BetaReputationSystem::check(std::size_t observer,
                                 std::size_t subject) const {
  detail::require(observer < m_ && subject < m_,
                  "BetaReputationSystem: index out of range");
  detail::require(observer != subject,
                  "BetaReputationSystem: self-observation is not evidence");
}

void BetaReputationSystem::record(std::size_t observer, std::size_t subject,
                                  bool positive, double weight) {
  check(observer, subject);
  detail::require(weight > 0.0 && weight <= 1.0,
                  "BetaReputationSystem: weight must be in (0,1]");
  (positive ? positive_ : negative_)[idx(observer, subject)] += weight;
}

void BetaReputationSystem::record_graded(std::size_t observer,
                                         std::size_t subject,
                                         double outcome) {
  check(observer, subject);
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "BetaReputationSystem: outcome must be in [0,1]");
  positive_[idx(observer, subject)] += outcome;
  negative_[idx(observer, subject)] += 1.0 - outcome;
}

double BetaReputationSystem::pairwise(std::size_t observer,
                                      std::size_t subject) const {
  check(observer, subject);
  const double r = positive_[idx(observer, subject)];
  const double s = negative_[idx(observer, subject)];
  return (r + 1.0) / (r + s + 2.0);
}

double BetaReputationSystem::reputation(std::size_t subject) const {
  detail::require(subject < m_, "BetaReputationSystem: index out of range");
  double r = 0.0;
  double s = 0.0;
  for (std::size_t o = 0; o < m_; ++o) {
    if (o == subject) continue;
    r += positive_[idx(o, subject)];
    s += negative_[idx(o, subject)];
  }
  return (r + 1.0) / (r + s + 2.0);
}

std::vector<double> BetaReputationSystem::reputations() const {
  std::vector<double> out(m_);
  for (std::size_t g = 0; g < m_; ++g) out[g] = reputation(g);
  return out;
}

double BetaReputationSystem::evidence(std::size_t subject) const {
  detail::require(subject < m_, "BetaReputationSystem: index out of range");
  double total = 0.0;
  for (std::size_t o = 0; o < m_; ++o) {
    if (o == subject) continue;
    total += positive_[idx(o, subject)] + negative_[idx(o, subject)];
  }
  return total;
}

void BetaReputationSystem::discount(double factor) {
  detail::require(factor >= 0.0 && factor < 1.0,
                  "BetaReputationSystem: factor must be in [0,1)");
  for (double& v : positive_) v *= factor;
  for (double& v : negative_) v *= factor;
}

TrustGraph BetaReputationSystem::to_trust_graph() const {
  TrustGraph g(m_);
  for (std::size_t i = 0; i < m_; ++i) {
    for (std::size_t j = 0; j < m_; ++j) {
      if (i == j) continue;
      const double mass =
          positive_[idx(i, j)] + negative_[idx(i, j)];
      if (mass > 0.0) g.set_trust(i, j, pairwise(i, j));
    }
  }
  return g;
}

}  // namespace svo::trust
