#include "trust/decay.hpp"

#include <algorithm>
#include <cmath>

namespace svo::trust {

DecayingTrustGraph::DecayingTrustGraph(std::size_t m, DecayLaw law,
                                       double lambda)
    : base_(m), stamp_(m, std::vector<double>(m, 0.0)), law_(law),
      lambda_(lambda) {
  detail::require(lambda >= 0.0, "DecayingTrustGraph: lambda must be >= 0");
}

DecayingTrustGraph::DecayingTrustGraph(TrustGraph base, DecayLaw law,
                                       double lambda)
    : base_(std::move(base)),
      stamp_(base_.size(), std::vector<double>(base_.size(), 0.0)),
      law_(law), lambda_(lambda) {
  detail::require(lambda >= 0.0, "DecayingTrustGraph: lambda must be >= 0");
}

void DecayingTrustGraph::advance(double dt) {
  detail::require(dt >= 0.0, "DecayingTrustGraph::advance: dt must be >= 0");
  now_ += dt;
}

void DecayingTrustGraph::set_trust(std::size_t i, std::size_t j, double u) {
  base_.set_trust(i, j, u);
  stamp_[i][j] = now_;
}

void DecayingTrustGraph::record_interaction(std::size_t i, std::size_t j,
                                            double outcome, double rate) {
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "DecayingTrustGraph: outcome must be in [0,1]");
  detail::require(rate > 0.0 && rate <= 1.0,
                  "DecayingTrustGraph: rate must be in (0,1]");
  // EWMA on the *decayed* current value: stale trust contributes less.
  const double current = trust(i, j);
  const double updated = (1.0 - rate) * current + rate * outcome;
  set_trust(i, j, updated);
}

double DecayingTrustGraph::decayed(double u0, double age) const {
  if (u0 <= 0.0) return 0.0;
  switch (law_) {
    case DecayLaw::Exponential:
      return u0 * std::exp(-lambda_ * age);
    case DecayLaw::Linear:
      return u0 * std::max(0.0, 1.0 - lambda_ * age);
  }
  return 0.0;
}

double DecayingTrustGraph::trust(std::size_t i, std::size_t j) const {
  const double u0 = base_.trust(i, j);
  if (u0 <= 0.0) return 0.0;
  return decayed(u0, now_ - stamp_[i][j]);
}

TrustGraph DecayingTrustGraph::snapshot() const {
  TrustGraph snap(size());
  for (std::size_t i = 0; i < size(); ++i) {
    for (const auto& e : base_.graph().out_edges(i)) {
      const double u = decayed(e.weight, now_ - stamp_[i][e.to]);
      if (u > 0.0) snap.set_trust(i, e.to, u);
    }
  }
  return snap;
}

double DecayingTrustGraph::dead_edge_fraction(double threshold) const {
  std::size_t total = 0;
  std::size_t dead = 0;
  for (std::size_t i = 0; i < size(); ++i) {
    for (const auto& e : base_.graph().out_edges(i)) {
      ++total;
      if (decayed(e.weight, now_ - stamp_[i][e.to]) < threshold) ++dead;
    }
  }
  return total == 0 ? 0.0 : static_cast<double>(dead) / static_cast<double>(total);
}

}  // namespace svo::trust
