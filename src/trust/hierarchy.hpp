/// \file hierarchy.hpp
/// Hierarchical reputation after GridEigenTrust (von Laszewski et al.
/// [11], Alunkal et al. [12], Section I-A): each organization (GSP)
/// contains entities — resources, services, users — each carrying its
/// own reputation; the organization's reputation aggregates its
/// entities, and a VO's reputation aggregates its organizations. The
/// paper works directly at GSP level; this module supplies the
/// resource-level substrate those systems used, so GSP-level trust can
/// be *derived* from per-resource observations instead of asserted.
#pragma once

#include <string>
#include <vector>

#include "game/coalition.hpp"
#include "trust/reputation.hpp"
#include "util/error.hpp"

namespace svo::trust {

/// One entity (resource/service) inside an organization.
struct Entity {
  std::string name;
  /// Reputation score in [0, 1].
  double reputation = 0.5;
  /// Aggregation weight (> 0), e.g. the resource's capacity share.
  double weight = 1.0;
};

/// How entity scores aggregate into their organization's score.
enum class HierarchyAggregation {
  WeightedMean,  ///< sum(w_i r_i) / sum(w_i) — GridEigenTrust's default
  Minimum,       ///< weakest resource dominates (conservative)
  Geometric,     ///< weighted geometric mean (penalizes low outliers)
};

/// A two-level organization -> entity hierarchy over m organizations
/// (the GSPs of the VO-formation game).
class ReputationHierarchy {
 public:
  explicit ReputationHierarchy(
      std::size_t organizations,
      HierarchyAggregation aggregation = HierarchyAggregation::WeightedMean);

  [[nodiscard]] std::size_t organizations() const noexcept {
    return entities_.size();
  }

  /// Add an entity to organization `org`; returns its index within org.
  /// Throws InvalidArgument on bad org, reputation outside [0,1], or
  /// non-positive weight.
  std::size_t add_entity(std::size_t org, Entity entity);

  [[nodiscard]] const std::vector<Entity>& entities(std::size_t org) const;

  /// Update one entity's reputation from an observed outcome in [0, 1]
  /// (EWMA with `rate`), the per-resource analogue of
  /// TrustGraph::record_interaction.
  void record_entity_outcome(std::size_t org, std::size_t entity,
                             double outcome, double rate = 0.3);

  /// Organization score: aggregation of its entities. Organizations with
  /// no entities score 0 (nothing to vouch for them).
  [[nodiscard]] double organization_reputation(std::size_t org) const;

  /// All organization scores.
  [[nodiscard]] std::vector<double> organization_reputations() const;

  /// VO score: the same aggregation applied over the member
  /// organizations' scores, each weighted by its total entity weight
  /// (bigger providers count more) — GridEigenTrust's VO level.
  [[nodiscard]] double vo_reputation(game::Coalition vo) const;

 private:
  [[nodiscard]] double aggregate(const std::vector<double>& scores,
                                 const std::vector<double>& weights) const;

  std::vector<std::vector<Entity>> entities_;
  HierarchyAggregation aggregation_;
};

/// Result of a clustered (FRTRUST-style) reputation computation.
struct ClusteredResult {
  /// Final per-GSP score: cluster_scores[assignment[i]] * within-cluster
  /// score of i, L1-renormalized over all GSPs (all-zero stays all-zero).
  std::vector<double> scores;
  /// Inter-cluster eigenvector (one entry per cluster; empty clusters
  /// participate as dangling nodes).
  std::vector<double> cluster_scores;
  /// Number of clusters (max assignment id + 1).
  std::size_t clusters = 0;
  /// Total power iterations across every per-cluster solve plus the
  /// inter-cluster rollup.
  std::size_t iterations = 0;
  /// True iff every sub-solve converged.
  bool converged = true;
};

/// Two-level clustered aggregation in the FRTRUST mold, the divide-and-
/// conquer path for very large populations (DESIGN.md §4i): GSPs are
/// partitioned by `assignment` (cluster id per GSP, ids in
/// [0, max_id]); each non-empty cluster is scored on its induced
/// subgraph (the engine picks dense or CSR per cluster size), then a
/// cluster-level TrustGraph — edge (a, b) summing all trust from
/// cluster a's members to cluster b's — is solved the same way and the
/// two levels multiply. Empty clusters are legal and score 0; a
/// single-GSP cluster scores its lone member 1 within the cluster;
/// disconnected clusters fall back to the dangling-node convention.
///
/// `opts.cache` must be null (the intermediate graphs are rebuilt per
/// call, so memoization can never hit; rejecting beats silently
/// thrashing the caller's cache). Throws InvalidArgument on that, on an
/// assignment size mismatch, or on invalid options.
[[nodiscard]] ClusteredResult clustered_reputation(
    const TrustGraph& g, const std::vector<std::size_t>& assignment,
    const ReputationOptions& opts = {});

}  // namespace svo::trust
