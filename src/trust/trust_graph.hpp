/// \file trust_graph.hpp
/// The paper's trust model (Section II-B): a weighted digraph (G, E)
/// whose edge weight u_ij is the direct trust G_i places in G_j, plus the
/// row normalization of eq. (1):
///
///   a_ij = u_ij / sum_{k in N_i} u_ik,
///
/// applied within whatever GSP subset (coalition) is being scored —
/// Algorithm 2 operates on the induced subgraph (C, E_C).
///
/// Beyond the 16-GSP paper setup, the graph carries the bookkeeping the
/// sparse/incremental reputation engine needs at 100k-1M participants
/// (DESIGN.md §4i): a process-unique identity (`uid`), a mutation
/// counter (`version`), a bounded log of recently changed edges
/// (`edges_changed_since`), and CSR exports whose values are bit-equal
/// to the dense matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "graph/digraph.hpp"
#include "linalg/matrix.hpp"
#include "linalg/sparse.hpp"
#include "util/rng.hpp"

namespace svo::trust {

/// Directed trust relationships among m GSPs.
class TrustGraph {
 public:
  /// m GSPs, no trust edges yet.
  explicit TrustGraph(std::size_t m) : graph_(m) {}

  /// Adopt an existing digraph (e.g. an Erdős–Rényi draw) as trust.
  explicit TrustGraph(graph::Digraph g) : graph_(std::move(g)) {}

  /// Copies are *new* graphs: same content and version, fresh `uid()`,
  /// so a ReputationCache entry keyed to the original never matches the
  /// copy (the two may diverge independently afterwards).
  TrustGraph(const TrustGraph& other);
  TrustGraph& operator=(const TrustGraph& other);
  /// Moves steal the identity (content travels with the uid); the
  /// moved-from graph is reset empty with a fresh uid.
  TrustGraph(TrustGraph&& other) noexcept;
  TrustGraph& operator=(TrustGraph&& other) noexcept;
  ~TrustGraph() = default;

  /// Number of GSPs.
  [[nodiscard]] std::size_t size() const noexcept {
    return graph_.vertex_count();
  }

  /// Process-unique identity of this graph object. Stable across
  /// mutations; changes only via move (stolen) — the half of a
  /// ReputationCache key that says "same graph object".
  [[nodiscard]] std::uint64_t uid() const noexcept { return uid_; }

  /// Mutation counter: bumped once per *effective* edge change
  /// (set_trust to the current value is a no-op). The other half of the
  /// cache key: same (uid, version) implies identical edge content.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Edges changed after `since_version` (each as (truster, trustee);
  /// duplicates possible when an edge changed repeatedly). Returns
  /// nullopt when the bounded log no longer reaches back that far — the
  /// caller must treat this as "everything may have changed" and
  /// cold-start. A `since_version` at or past `version()` yields an
  /// empty list.
  [[nodiscard]] std::optional<std::vector<std::pair<std::size_t, std::size_t>>>
  edges_changed_since(std::uint64_t since_version) const;

  /// Set direct trust u_ij (>= 0; 0 removes the edge — the paper equates
  /// u_ij = 0 with complete distrust / no relationship).
  void set_trust(std::size_t i, std::size_t j, double u);

  /// Direct trust u_ij; 0 when no edge exists.
  [[nodiscard]] double trust(std::size_t i, std::size_t j) const;

  /// Underlying digraph (read-only).
  [[nodiscard]] const graph::Digraph& graph() const noexcept { return graph_; }

  /// Normalized trust matrix A over all GSPs (eq. (1)). Rows of GSPs with
  /// no outgoing trust are all-zero ("dangling"; the reputation engine
  /// patches them to uniform).
  [[nodiscard]] linalg::Matrix normalized_matrix() const;

  /// Normalized trust matrix A_C of the subgraph induced by `members`
  /// (original GSP indices, strictly increasing). Normalization happens
  /// *inside* the coalition: opinions of outsiders are excluded, exactly
  /// as TVOF requires (Section III-A).
  [[nodiscard]] linalg::Matrix normalized_matrix(
      const std::vector<std::size_t>& members) const;

  /// CSR twin of normalized_matrix(): every stored value is bit-equal to
  /// the corresponding dense entry (row sums are accumulated over the
  /// column-sorted nonzeros, which matches linalg::normalize_l1's
  /// ascending sum exactly — zeros only ever add +0.0). O(E log deg).
  [[nodiscard]] linalg::SparseMatrix normalized_sparse() const;

  /// CSR twin of normalized_matrix(members); same bit-equality.
  [[nodiscard]] linalg::SparseMatrix normalized_sparse(
      const std::vector<std::size_t>& members) const;

  /// Raw (unnormalized) coalition trust u_ij as CSR — the robust layer's
  /// credibility/consensus passes consume this instead of O(c^2)
  /// dense lookups. Pass all GSPs via the zero-argument overload.
  [[nodiscard]] linalg::SparseMatrix raw_sparse() const;
  [[nodiscard]] linalg::SparseMatrix raw_sparse(
      const std::vector<std::size_t>& members) const;

  /// Interaction-driven trust update (extension beyond the paper's static
  /// snapshot; supports dynamic simulations): exponential moving average
  ///   u_ij <- (1 - rate) * u_ij + rate * outcome,
  /// where outcome in [0, 1] scores the trustee's delivered service.
  void record_interaction(std::size_t truster, std::size_t trustee,
                          double outcome, double rate = 0.3);

 private:
  [[nodiscard]] static std::uint64_t next_uid() noexcept;
  void note_change(std::size_t i, std::size_t j);
  /// Shared CSR builder; normalizes rows when `normalized`.
  [[nodiscard]] linalg::SparseMatrix build_sparse(
      const std::vector<std::size_t>* members, bool normalized) const;

  /// Changed-edge log capacity; exceeding it drops the oldest half of
  /// the window (callers asking past the window cold-start anyway).
  static constexpr std::size_t kDeltaLogCapacity = 1024;

  graph::Digraph graph_;
  std::uint64_t uid_ = next_uid();
  std::uint64_t version_ = 0;
  /// Version number of the oldest logged change minus one: log entry k
  /// was recorded by the mutation that produced version delta_base_+k+1.
  std::uint64_t delta_base_ = 0;
  std::vector<std::pair<std::size_t, std::size_t>> delta_log_;
};

/// Convenience: random trust graph per the paper's setup — Erdős–Rényi
/// G(m, p) with positive uniform weights.
[[nodiscard]] TrustGraph random_trust_graph(std::size_t m, double p,
                                            util::Xoshiro256& rng);

/// Scale-regime generator: m GSPs where every GSP rates `degree` targets
/// drawn uniformly (duplicates collapse, self-ratings skipped), weights
/// uniform in (0, 1]. O(m * degree) — usable at m = 1M where the
/// G(m, p) generator's O(m^2) coin flips are not.
[[nodiscard]] TrustGraph random_sparse_trust_graph(std::size_t m,
                                                   std::size_t degree,
                                                   util::Xoshiro256& rng);

}  // namespace svo::trust
