/// \file trust_graph.hpp
/// The paper's trust model (Section II-B): a weighted digraph (G, E)
/// whose edge weight u_ij is the direct trust G_i places in G_j, plus the
/// row normalization of eq. (1):
///
///   a_ij = u_ij / sum_{k in N_i} u_ik,
///
/// applied within whatever GSP subset (coalition) is being scored —
/// Algorithm 2 operates on the induced subgraph (C, E_C).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/digraph.hpp"
#include "linalg/matrix.hpp"
#include "util/rng.hpp"

namespace svo::trust {

/// Directed trust relationships among m GSPs.
class TrustGraph {
 public:
  /// m GSPs, no trust edges yet.
  explicit TrustGraph(std::size_t m) : graph_(m) {}

  /// Adopt an existing digraph (e.g. an Erdős–Rényi draw) as trust.
  explicit TrustGraph(graph::Digraph g) : graph_(std::move(g)) {}

  /// Number of GSPs.
  [[nodiscard]] std::size_t size() const noexcept {
    return graph_.vertex_count();
  }

  /// Set direct trust u_ij (>= 0; 0 removes the edge — the paper equates
  /// u_ij = 0 with complete distrust / no relationship).
  void set_trust(std::size_t i, std::size_t j, double u);

  /// Direct trust u_ij; 0 when no edge exists.
  [[nodiscard]] double trust(std::size_t i, std::size_t j) const;

  /// Underlying digraph (read-only).
  [[nodiscard]] const graph::Digraph& graph() const noexcept { return graph_; }

  /// Normalized trust matrix A over all GSPs (eq. (1)). Rows of GSPs with
  /// no outgoing trust are all-zero ("dangling"; the reputation engine
  /// patches them to uniform).
  [[nodiscard]] linalg::Matrix normalized_matrix() const;

  /// Normalized trust matrix A_C of the subgraph induced by `members`
  /// (original GSP indices, strictly increasing). Normalization happens
  /// *inside* the coalition: opinions of outsiders are excluded, exactly
  /// as TVOF requires (Section III-A).
  [[nodiscard]] linalg::Matrix normalized_matrix(
      const std::vector<std::size_t>& members) const;

  /// Interaction-driven trust update (extension beyond the paper's static
  /// snapshot; supports dynamic simulations): exponential moving average
  ///   u_ij <- (1 - rate) * u_ij + rate * outcome,
  /// where outcome in [0, 1] scores the trustee's delivered service.
  void record_interaction(std::size_t truster, std::size_t trustee,
                          double outcome, double rate = 0.3);

 private:
  graph::Digraph graph_;
};

/// Convenience: random trust graph per the paper's setup — Erdős–Rényi
/// G(m, p) with positive uniform weights.
[[nodiscard]] TrustGraph random_trust_graph(std::size_t m, double p,
                                            util::Xoshiro256& rng);

}  // namespace svo::trust
