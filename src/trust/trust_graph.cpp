#include "trust/trust_graph.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "graph/generators.hpp"

namespace svo::trust {

std::uint64_t TrustGraph::next_uid() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

TrustGraph::TrustGraph(const TrustGraph& other)
    : graph_(other.graph_),
      version_(other.version_),
      delta_base_(other.delta_base_),
      delta_log_(other.delta_log_) {}

TrustGraph& TrustGraph::operator=(const TrustGraph& other) {
  if (this == &other) return *this;
  graph_ = other.graph_;
  uid_ = next_uid();  // content changed wholesale: never match old entries
  version_ = other.version_;
  delta_base_ = other.delta_base_;
  delta_log_ = other.delta_log_;
  return *this;
}

TrustGraph::TrustGraph(TrustGraph&& other) noexcept
    : graph_(std::move(other.graph_)),
      uid_(other.uid_),
      version_(other.version_),
      delta_base_(other.delta_base_),
      delta_log_(std::move(other.delta_log_)) {
  other.graph_ = graph::Digraph(0);
  other.uid_ = next_uid();
  other.version_ = 0;
  other.delta_base_ = 0;
  other.delta_log_.clear();
}

TrustGraph& TrustGraph::operator=(TrustGraph&& other) noexcept {
  if (this == &other) return *this;
  graph_ = std::move(other.graph_);
  uid_ = other.uid_;
  version_ = other.version_;
  delta_base_ = other.delta_base_;
  delta_log_ = std::move(other.delta_log_);
  other.graph_ = graph::Digraph(0);
  other.uid_ = next_uid();
  other.version_ = 0;
  other.delta_base_ = 0;
  other.delta_log_.clear();
  return *this;
}

void TrustGraph::note_change(std::size_t i, std::size_t j) {
  ++version_;
  if (delta_log_.size() >= kDeltaLogCapacity) {
    const std::size_t drop = kDeltaLogCapacity / 2;
    delta_log_.erase(delta_log_.begin(),
                     delta_log_.begin() + static_cast<std::ptrdiff_t>(drop));
    delta_base_ += drop;
  }
  delta_log_.emplace_back(i, j);
}

std::optional<std::vector<std::pair<std::size_t, std::size_t>>>
TrustGraph::edges_changed_since(std::uint64_t since_version) const {
  if (since_version >= version_) return std::vector<std::pair<std::size_t, std::size_t>>{};
  if (since_version < delta_base_) return std::nullopt;  // window lost
  const std::size_t first = since_version - delta_base_;
  return std::vector<std::pair<std::size_t, std::size_t>>(
      delta_log_.begin() + static_cast<std::ptrdiff_t>(first),
      delta_log_.end());
}

void TrustGraph::set_trust(std::size_t i, std::size_t j, double u) {
  detail::require(i < size() && j < size(), "TrustGraph: index out of range");
  detail::require(i != j, "TrustGraph: self-trust is not modeled");
  detail::require(std::isfinite(u), "TrustGraph: trust must be finite");
  detail::require(u >= 0.0, "TrustGraph: trust must be >= 0");
  if (u == 0.0) {
    if (graph_.remove_edge(i, j)) note_change(i, j);
  } else {
    if (graph_.edge_weight(i, j).value_or(0.0) != u) {
      graph_.set_edge(i, j, u);
      note_change(i, j);
    }
  }
}

double TrustGraph::trust(std::size_t i, std::size_t j) const {
  detail::require(i < size() && j < size(), "TrustGraph: index out of range");
  return graph_.edge_weight(i, j).value_or(0.0);
}

linalg::Matrix TrustGraph::normalized_matrix() const {
  linalg::Matrix a = graph_.adjacency_matrix();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    (void)linalg::normalize_l1(row);  // eq. (1); zero rows stay zero
  }
  return a;
}

linalg::Matrix TrustGraph::normalized_matrix(
    const std::vector<std::size_t>& members) const {
  detail::require(std::is_sorted(members.begin(), members.end()) &&
                      std::adjacent_find(members.begin(), members.end()) ==
                          members.end(),
                  "TrustGraph: members must be strictly increasing");
  const std::size_t c = members.size();
  linalg::Matrix a(c, c);
  for (std::size_t i = 0; i < c; ++i) {
    detail::require(members[i] < size(), "TrustGraph: member out of range");
    for (std::size_t j = 0; j < c; ++j) {
      if (i == j) continue;
      a(i, j) = graph_.edge_weight(members[i], members[j]).value_or(0.0);
    }
    auto row = a.row(i);
    (void)linalg::normalize_l1(row);  // normalize within the coalition
  }
  return a;
}

linalg::SparseMatrix TrustGraph::build_sparse(
    const std::vector<std::size_t>* members, bool normalized) const {
  std::size_t n = 0;
  if (members != nullptr) {
    detail::require(std::is_sorted(members->begin(), members->end()) &&
                        std::adjacent_find(members->begin(), members->end()) ==
                            members->end(),
                    "TrustGraph: members must be strictly increasing");
    n = members->size();
  } else {
    n = size();
  }
  std::vector<linalg::Triplet> triplets;
  triplets.reserve(members == nullptr ? graph_.edge_count() : n * 4);
  std::vector<std::pair<std::size_t, double>> row;
  for (std::size_t li = 0; li < n; ++li) {
    const std::size_t gi = members == nullptr ? li : (*members)[li];
    detail::require(gi < size(), "TrustGraph: member out of range");
    row.clear();
    for (const graph::Edge& e : graph_.out_edges(gi)) {
      std::size_t lj = e.to;
      if (members != nullptr) {
        const auto it = std::lower_bound(members->begin(), members->end(), e.to);
        if (it == members->end() || *it != e.to) continue;  // outsider
        lj = static_cast<std::size_t>(it - members->begin());
      }
      if (lj == li) continue;
      row.emplace_back(lj, e.weight);
    }
    std::sort(row.begin(), row.end());
    double divisor = 1.0;
    if (normalized) {
      // Ascending sum over the sorted nonzeros == linalg::normalize_l1's
      // sum over the dense row (absent entries add exactly +0.0), so
      // each stored a_ij below is bit-equal to the dense a(i, j).
      double sum = 0.0;
      for (const auto& [c_, w] : row) sum += w;
      if (sum <= 0.0) continue;  // dangling: dense row stays all-zero
      divisor = sum;
    }
    for (const auto& [lj, w] : row) {
      triplets.push_back({li, lj, w / divisor});
    }
  }
  return linalg::SparseMatrix::from_triplets(n, n, std::move(triplets));
}

linalg::SparseMatrix TrustGraph::normalized_sparse() const {
  return build_sparse(nullptr, /*normalized=*/true);
}

linalg::SparseMatrix TrustGraph::normalized_sparse(
    const std::vector<std::size_t>& members) const {
  return build_sparse(&members, /*normalized=*/true);
}

linalg::SparseMatrix TrustGraph::raw_sparse() const {
  return build_sparse(nullptr, /*normalized=*/false);
}

linalg::SparseMatrix TrustGraph::raw_sparse(
    const std::vector<std::size_t>& members) const {
  return build_sparse(&members, /*normalized=*/false);
}

void TrustGraph::record_interaction(std::size_t truster, std::size_t trustee,
                                    double outcome, double rate) {
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "TrustGraph: outcome must be in [0,1]");
  detail::require(rate > 0.0 && rate <= 1.0,
                  "TrustGraph: rate must be in (0,1]");
  const double updated = (1.0 - rate) * trust(truster, trustee) + rate * outcome;
  set_trust(truster, trustee, updated);
}

TrustGraph random_trust_graph(std::size_t m, double p, util::Xoshiro256& rng) {
  graph::ErdosRenyiOptions opts;
  opts.p = p;
  return TrustGraph(graph::erdos_renyi(m, opts, rng));
}

TrustGraph random_sparse_trust_graph(std::size_t m, std::size_t degree,
                                     util::Xoshiro256& rng) {
  detail::require(m >= 2, "random_sparse_trust_graph: need at least 2 GSPs");
  detail::require(degree >= 1,
                  "random_sparse_trust_graph: degree must be >= 1");
  graph::Digraph g(m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t t = 0; t < degree; ++t) {
      const std::size_t j = rng.index(m);
      if (j == i) continue;  // no self-trust; expected degree ~ degree*(1-1/m)
      double w = rng.uniform(0.0, 1.0);
      if (w <= 0.0) w = std::numeric_limits<double>::min();
      g.set_edge(i, j, w);
    }
  }
  return TrustGraph(std::move(g));
}

}  // namespace svo::trust
