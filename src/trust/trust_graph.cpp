#include "trust/trust_graph.hpp"

#include <algorithm>
#include <cmath>

#include "graph/generators.hpp"

namespace svo::trust {

void TrustGraph::set_trust(std::size_t i, std::size_t j, double u) {
  detail::require(i < size() && j < size(), "TrustGraph: index out of range");
  detail::require(i != j, "TrustGraph: self-trust is not modeled");
  detail::require(std::isfinite(u), "TrustGraph: trust must be finite");
  detail::require(u >= 0.0, "TrustGraph: trust must be >= 0");
  if (u == 0.0) {
    (void)graph_.remove_edge(i, j);
  } else {
    graph_.set_edge(i, j, u);
  }
}

double TrustGraph::trust(std::size_t i, std::size_t j) const {
  detail::require(i < size() && j < size(), "TrustGraph: index out of range");
  return graph_.edge_weight(i, j).value_or(0.0);
}

linalg::Matrix TrustGraph::normalized_matrix() const {
  linalg::Matrix a = graph_.adjacency_matrix();
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    (void)linalg::normalize_l1(row);  // eq. (1); zero rows stay zero
  }
  return a;
}

linalg::Matrix TrustGraph::normalized_matrix(
    const std::vector<std::size_t>& members) const {
  detail::require(std::is_sorted(members.begin(), members.end()) &&
                      std::adjacent_find(members.begin(), members.end()) ==
                          members.end(),
                  "TrustGraph: members must be strictly increasing");
  const std::size_t c = members.size();
  linalg::Matrix a(c, c);
  for (std::size_t i = 0; i < c; ++i) {
    detail::require(members[i] < size(), "TrustGraph: member out of range");
    for (std::size_t j = 0; j < c; ++j) {
      if (i == j) continue;
      a(i, j) = graph_.edge_weight(members[i], members[j]).value_or(0.0);
    }
    auto row = a.row(i);
    (void)linalg::normalize_l1(row);  // normalize within the coalition
  }
  return a;
}

void TrustGraph::record_interaction(std::size_t truster, std::size_t trustee,
                                    double outcome, double rate) {
  detail::require(outcome >= 0.0 && outcome <= 1.0,
                  "TrustGraph: outcome must be in [0,1]");
  detail::require(rate > 0.0 && rate <= 1.0,
                  "TrustGraph: rate must be in (0,1]");
  const double updated = (1.0 - rate) * trust(truster, trustee) + rate * outcome;
  set_trust(truster, trustee, updated);
}

TrustGraph random_trust_graph(std::size_t m, double p, util::Xoshiro256& rng) {
  graph::ErdosRenyiOptions opts;
  opts.p = p;
  return TrustGraph(graph::erdos_renyi(m, opts, rng));
}

}  // namespace svo::trust
