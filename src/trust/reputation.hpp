/// \file reputation.hpp
/// Global reputation of GSPs — paper Algorithm 2 / eqs. (2)-(7): the
/// dominant left eigenvector of the (coalition-restricted) normalized
/// trust matrix, found by power iteration; plus the average global
/// reputation of eq. (7) used as the VO-level metric.
///
/// Storage-polymorphic since DESIGN.md §4i: small coalitions solve on
/// the dense matrix exactly as the paper does; above a threshold the
/// engine switches to the CSR backend, whose gather-form iteration is
/// bit-identical to the dense one — the backend is an implementation
/// detail, never a semantic knob. An optional ReputationCache makes
/// repeated full-graph computes incremental: unchanged graphs return the
/// cached result outright, small edge deltas warm-start the iteration
/// from the previous eigenvector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/power_method.hpp"
#include "linalg/sparse.hpp"
#include "trust/robust.hpp"
#include "trust/trust_graph.hpp"

namespace svo::trust {

/// Result of one reputation computation.
struct ReputationResult {
  /// Reputation score per coalition member, aligned with the member list
  /// passed in (or with GSP ids when scoring all GSPs). L1-normalized.
  std::vector<double> scores;
  /// Average global reputation of the coalition, eq. (7). Because scores
  /// sum to 1, this equals 1/|C| — the *interesting* comparative metric
  /// across coalitions of different sizes (paper Figs. 3, 5-8) divides
  /// mass among fewer, better-connected members as TVOF prunes.
  double average = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Which matrix storage the engine solves on.
enum class TrustBackend {
  /// Dense at or below ReputationOptions::sparse_threshold, CSR above —
  /// the default; both sides produce bit-identical results.
  Auto,
  /// Always dense (the paper's literal layout; O(n^2) memory).
  Dense,
  /// Always CSR (O(nnz) memory; required beyond ~10k participants).
  Sparse,
};

/// Memo of the last full-graph standard (non-robust) compute, keyed by
/// (TrustGraph::uid, TrustGraph::version, power options). Three regimes:
///
///  - exact hit — same uid and version: the cached result is returned
///    without touching the matrix. Bit-identical to recomputing, because
///    the compute is deterministic.
///  - warm start — same uid, version advanced by at most
///    ReputationOptions::warm_max_delta logged edge changes: the cached
///    eigenvector seeds the power iteration. Converges to the same fixed
///    point within epsilon in far fewer iterations, but the iterate path
///    differs from a cold start: warm results match cold ones only up to
///    the convergence tolerance (DESIGN.md §4i).
///  - cold start — first sight, options changed, delta too large, or the
///    graph's bounded change log no longer covers the gap.
///
/// NOT thread-safe: one cache per computing thread (svc::FormationService
/// rejects a shared cache at construction for exactly this reason).
/// Ignored by coalition-restricted and robust computes.
class ReputationCache {
 public:
  /// Observability counters, cumulative since construction/clear().
  struct Stats {
    std::uint64_t exact_hits = 0;
    std::uint64_t warm_starts = 0;
    std::uint64_t cold_starts = 0;
    /// Sum over warm starts of (iterations of the last cold solve on
    /// this graph - iterations actually run); the headline number
    /// bench_trust_scale gates on.
    std::uint64_t iterations_saved = 0;
  };

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Drop the memo and zero the stats.
  void clear() noexcept {
    has_entry_ = false;
    stats_ = Stats{};
  }

 private:
  friend class ReputationEngine;

  bool has_entry_ = false;
  std::uint64_t graph_uid_ = 0;
  std::uint64_t graph_version_ = 0;
  /// Options fingerprint: a memo computed under different power options
  /// is neither returned nor used as a warm seed.
  linalg::PowerMethodOptions power_;
  ReputationResult result_;
  /// Iterations of the most recent cold solve (warm-start savings base).
  std::size_t cold_iterations_ = 0;
  Stats stats_;
};

/// Options for the engine. Defaults: epsilon 1e-9, damping 0.15
/// (DESIGN.md §4.1 — set damping to 0 for the paper's literal iteration).
/// `robust` defaults to disabled, in which case the engine runs the
/// literal pipeline untouched — bit-identical scores to a build without
/// the defense layer (DESIGN.md §4d).
struct ReputationOptions {
  linalg::PowerMethodOptions power;
  RobustOptions robust;
  /// Matrix storage selection (see TrustBackend).
  TrustBackend backend = TrustBackend::Auto;
  /// Auto switches to CSR strictly above this solved dimension. 64 keeps
  /// every paper-scale experiment (k <= 16) on the literal dense path.
  std::size_t sparse_threshold = 64;
  /// Optional incremental cache for full-graph standard computes; the
  /// caller owns it and must not share it across threads. Must be null
  /// when `robust.enabled` (the robust pipeline's quarantine list varies
  /// per round, so memoization would be incorrect).
  ReputationCache* cache = nullptr;
  /// Warm-start only when at most this many edge changes separate the
  /// cached eigenvector from the current graph; larger deltas cold-start.
  std::size_t warm_max_delta = 64;

  /// Throws InvalidArgument on invalid power/robust knobs or on
  /// `cache != nullptr && robust.enabled`.
  void validate() const;
};

/// Computes global reputation vectors for GSP coalitions.
class ReputationEngine {
 public:
  explicit ReputationEngine(ReputationOptions opts = {})
      : opts_(std::move(opts)) {}

  /// Score every GSP in the trust graph.
  [[nodiscard]] ReputationResult compute(const TrustGraph& g) const;

  /// Score the coalition `members` (strictly increasing original GSP
  /// indices) on its induced subgraph. Empty coalition -> empty result.
  [[nodiscard]] ReputationResult compute(
      const TrustGraph& g, const std::vector<std::size_t>& members) const;

  [[nodiscard]] const ReputationOptions& options() const noexcept {
    return opts_;
  }

 private:
  /// True when dimension n solves on the CSR backend.
  [[nodiscard]] bool use_sparse(std::size_t n) const noexcept;
  [[nodiscard]] ReputationResult from_matrix(const linalg::Matrix& a) const;
  /// Standard sparse solve of a coalition CSR (no cache).
  [[nodiscard]] ReputationResult from_sparse(const linalg::SparseMatrix& a) const;
  /// Standard full-graph sparse solve with cache/warm-start handling.
  [[nodiscard]] ReputationResult full_sparse(const TrustGraph& g) const;
  /// Defended pipeline (opts_.robust.enabled): credibility-weighted,
  /// outlier-resistant power iteration plus quarantine of fresh
  /// identities. `members` are original GSP ids, strictly increasing.
  /// Dense and sparse flavors are bit-identical.
  [[nodiscard]] ReputationResult compute_robust(
      const TrustGraph& g, const std::vector<std::size_t>& members) const;

  ReputationOptions opts_;
};

/// Average global reputation (eq. (7)) of an explicit score vector.
[[nodiscard]] double average_reputation(const std::vector<double>& scores);

}  // namespace svo::trust
