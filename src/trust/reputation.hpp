/// \file reputation.hpp
/// Global reputation of GSPs — paper Algorithm 2 / eqs. (2)-(7): the
/// dominant left eigenvector of the (coalition-restricted) normalized
/// trust matrix, found by power iteration; plus the average global
/// reputation of eq. (7) used as the VO-level metric.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/power_method.hpp"
#include "trust/robust.hpp"
#include "trust/trust_graph.hpp"

namespace svo::trust {

/// Result of one reputation computation.
struct ReputationResult {
  /// Reputation score per coalition member, aligned with the member list
  /// passed in (or with GSP ids when scoring all GSPs). L1-normalized.
  std::vector<double> scores;
  /// Average global reputation of the coalition, eq. (7). Because scores
  /// sum to 1, this equals 1/|C| — the *interesting* comparative metric
  /// across coalitions of different sizes (paper Figs. 3, 5-8) divides
  /// mass among fewer, better-connected members as TVOF prunes.
  double average = 0.0;
  std::size_t iterations = 0;
  bool converged = false;
};

/// Options for the engine. Defaults: epsilon 1e-9, damping 0.15
/// (DESIGN.md §4.1 — set damping to 0 for the paper's literal iteration).
/// `robust` defaults to disabled, in which case the engine runs the
/// literal pipeline untouched — bit-identical scores to a build without
/// the defense layer (DESIGN.md §4d).
struct ReputationOptions {
  linalg::PowerMethodOptions power;
  RobustOptions robust;
};

/// Computes global reputation vectors for GSP coalitions.
class ReputationEngine {
 public:
  explicit ReputationEngine(ReputationOptions opts = {}) : opts_(opts) {}

  /// Score every GSP in the trust graph.
  [[nodiscard]] ReputationResult compute(const TrustGraph& g) const;

  /// Score the coalition `members` (strictly increasing original GSP
  /// indices) on its induced subgraph. Empty coalition -> empty result.
  [[nodiscard]] ReputationResult compute(
      const TrustGraph& g, const std::vector<std::size_t>& members) const;

  [[nodiscard]] const ReputationOptions& options() const noexcept {
    return opts_;
  }

 private:
  [[nodiscard]] ReputationResult from_matrix(const linalg::Matrix& a) const;
  /// Defended pipeline (opts_.robust.enabled): credibility-weighted,
  /// outlier-resistant power iteration plus quarantine of fresh
  /// identities. `members` are original GSP ids, strictly increasing.
  [[nodiscard]] ReputationResult compute_robust(
      const TrustGraph& g, const std::vector<std::size_t>& members) const;

  ReputationOptions opts_;
};

/// Average global reputation (eq. (7)) of an explicit score vector.
[[nodiscard]] double average_reputation(const std::vector<double>& scores);

}  // namespace svo::trust
