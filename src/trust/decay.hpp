/// \file decay.hpp
/// Time-decaying trust after Azzedin & Maheswaran [9], whose model the
/// paper critiques: "the assumption of decaying trust and reputation
/// with time limits the applications of this method in grids. This
/// method converges to a state in which the formation of new VOs is not
/// possible." DecayingTrustGraph implements that model so
/// bench_ablation_decay can reproduce the critique quantitatively.
#pragma once

#include "trust/trust_graph.hpp"

namespace svo::trust {

/// Decay law applied to the age of a trust relationship.
enum class DecayLaw {
  Exponential,  ///< u(t) = u0 * exp(-lambda * age)
  Linear,       ///< u(t) = u0 * max(0, 1 - lambda * age)
};

/// Trust graph whose edges lose strength with (logical) time unless
/// refreshed by interactions. Time is advanced explicitly so that
/// simulations stay deterministic.
class DecayingTrustGraph {
 public:
  /// `lambda` is the decay rate per unit of logical time (>= 0).
  DecayingTrustGraph(std::size_t m, DecayLaw law, double lambda);

  /// Adopt an existing trust graph; all edges are stamped "fresh".
  DecayingTrustGraph(TrustGraph base, DecayLaw law, double lambda);

  [[nodiscard]] std::size_t size() const noexcept { return base_.size(); }
  [[nodiscard]] double now() const noexcept { return now_; }

  /// Advance logical time by dt >= 0.
  void advance(double dt);

  /// Set/refresh direct trust at the current time.
  void set_trust(std::size_t i, std::size_t j, double u);

  /// Interaction update (EWMA, like TrustGraph::record_interaction) —
  /// also refreshes the edge's timestamp.
  void record_interaction(std::size_t i, std::size_t j, double outcome,
                          double rate = 0.3);

  /// Decayed trust value at the current time.
  [[nodiscard]] double trust(std::size_t i, std::size_t j) const;

  /// Materialize the decayed graph (for the reputation engine and the
  /// mechanisms, which consume a TrustGraph snapshot).
  [[nodiscard]] TrustGraph snapshot() const;

  /// Fraction of originally positive edges that have decayed below
  /// `threshold` at the current time — the "VO formation dies out"
  /// indicator from the paper's critique.
  [[nodiscard]] double dead_edge_fraction(double threshold = 1e-3) const;

 private:
  [[nodiscard]] double decayed(double u0, double age) const;

  TrustGraph base_;                 ///< trust values at their stamp time
  std::vector<std::vector<double>> stamp_;  ///< last-refresh time per pair
  DecayLaw law_;
  double lambda_;
  double now_ = 0.0;
};

}  // namespace svo::trust
