/// \file lublin.hpp
/// Lublin–Feitelson synthetic workload model (JPDC 2003) — the standard
/// citable generator for rigid parallel-batch workloads, offered as a
/// second trace family next to the Atlas-matched generator:
///
///   sizes:    a serial fraction, a power-of-two bias, and a two-stage
///             log-uniform distribution over log2(processors);
///   runtimes: a hyper-Gamma pair whose mixing probability depends
///             linearly on log2(size) (bigger jobs lean longer);
///   arrivals: exponential inter-arrival gaps (the published model's
///             daily-cycle refinement is out of scope for VO formation,
///             which consumes sizes and runtimes only).
///
/// Parameter defaults follow the published batch model's shape; exact
/// constants vary across installations, so every one is exposed. Where
/// this implementation approximates the paper (arrival cycles, parameter
/// values) the header says so explicitly.
#pragma once

#include <cstdint>

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace svo::trace {

/// Model parameters (published batch-job defaults, approximated).
struct LublinOptions {
  std::size_t num_jobs = 20'000;
  /// Probability of a serial (1-processor) job.
  double serial_probability = 0.244;
  /// Probability a parallel job size is rounded to a power of two.
  double power_of_two_probability = 0.576;
  /// Two-stage uniform over log2(size): U[ulow, umed] with probability
  /// uprob, else U[umed, uhi].
  double ulow = 0.8;
  double umed = 4.5;
  /// Upper end defaults to log2(max_processors) at generation time when
  /// <= 0.
  double uhi = 0.0;
  double uprob = 0.86;
  std::int64_t max_processors = 8832;
  /// Hyper-Gamma runtime: Gamma(a1, b1) with probability p(size), else
  /// Gamma(a2, b2); p = pa * log2(size) + pb, clamped to [0, 1].
  double a1 = 4.2;
  double b1 = 0.94;
  double a2 = 312.0;
  double b2 = 0.03;
  double pa = -0.0054;
  double pb = 0.78;
  /// Runtimes are exp(Gamma) seconds in the published model family;
  /// clamp to this ceiling (14 days).
  double max_runtime_seconds = 1'209'600.0;
  /// Mean inter-arrival gap, seconds (exponential arrivals).
  double mean_interarrival_seconds = 420.0;
  /// Fraction of jobs marked completed (status 1).
  double completed_fraction = 0.75;
};

/// Generate a Lublin–Feitelson-style trace. Deterministic in `seed`.
[[nodiscard]] Trace generate_lublin(const LublinOptions& opts,
                                    std::uint64_t seed);

}  // namespace svo::trace
