#include "trace/stream.hpp"

namespace svo::trace {

AtlasJobStream::AtlasJobStream(AtlasSynthOptions opts, std::uint64_t seed)
    : opts_(std::move(opts)), seed_(seed), rng_(seed) {
  detail::validate_atlas_options(opts_);
}

bool AtlasJobStream::next(SwfJob& out) {
  if (exhausted()) return false;
  out = detail::synthesize_job(static_cast<std::int64_t>(produced_ + 1),
                               opts_, rng_);
  ++produced_;
  return true;
}

std::vector<SwfJob> AtlasJobStream::next_chunk(std::size_t max_jobs) {
  svo::detail::require(max_jobs > 0, "AtlasJobStream::next_chunk: max_jobs == 0");
  std::vector<SwfJob> chunk;
  chunk.reserve(std::min(max_jobs, remaining()));
  SwfJob job;
  while (chunk.size() < max_jobs && next(job)) {
    chunk.push_back(job);
  }
  return chunk;
}

std::optional<ProgramSpec> AtlasJobStream::next_program(
    double min_runtime_seconds, std::size_t max_tasks) {
  SwfJob job;
  while (next(job)) {
    if (!job.completed() || job.run_time < min_runtime_seconds) continue;
    if (max_tasks > 0 &&
        job.allocated_processors > static_cast<std::int64_t>(max_tasks)) {
      continue;
    }
    if (job.allocated_processors <= 0 || job.avg_cpu_time <= 0.0) continue;
    return program_from_job(job, min_runtime_seconds);
  }
  return std::nullopt;
}

void AtlasJobStream::reset() {
  rng_ = util::Xoshiro256(seed_);
  produced_ = 0;
}

}  // namespace svo::trace
