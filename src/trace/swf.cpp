#include "trace/swf.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/error.hpp"

namespace svo::trace {

namespace {

/// Split a data line into up to 18 numeric tokens; returns token count
/// or SIZE_MAX when a token fails to parse as a double.
std::size_t tokenize(std::string_view line, double (&out)[18]) {
  std::size_t count = 0;
  std::size_t i = 0;
  const std::size_t n = line.size();
  while (i < n && count < 18) {
    while (i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
    if (i >= n) break;
    const std::size_t start = i;
    while (i < n && line[i] != ' ' && line[i] != '\t' && line[i] != '\r') ++i;
    double value = 0.0;
    const auto* first = line.data() + start;
    const auto* last = line.data() + i;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc() || ptr != last) return SIZE_MAX;
    // from_chars accepts "inf"/"nan" spellings; no SWF field is ever
    // legitimately non-finite, and letting one through would poison
    // downstream casts and comparisons. Reject the whole line.
    if (!std::isfinite(value)) return SIZE_MAX;
    out[count++] = value;
  }
  // Trailing garbage (a 19th token) is malformed.
  while (i < n && (line[i] == ' ' || line[i] == '\t' || line[i] == '\r')) ++i;
  if (i < n) return SIZE_MAX;
  return count;
}

std::int64_t as_int(double v) noexcept {
  // Saturate: a finite double beyond int64 range (e.g. a "1e300" job
  // number) must not hit the out-of-range cast, which is UB.
  constexpr double kMax = 9.2233720368547748e18;
  if (v >= kMax) return std::numeric_limits<std::int64_t>::max();
  if (v <= -kMax) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(v);
}

}  // namespace

bool parse_swf_line(std::string_view line, SwfJob& job) {
  double f[18];
  const std::size_t count = tokenize(line, f);
  if (count != 18) return false;
  job.job_number = as_int(f[0]);
  job.submit_time = as_int(f[1]);
  job.wait_time = as_int(f[2]);
  job.run_time = f[3];
  job.allocated_processors = as_int(f[4]);
  job.avg_cpu_time = f[5];
  job.used_memory_kb = f[6];
  job.requested_processors = as_int(f[7]);
  job.requested_time = f[8];
  job.requested_memory_kb = f[9];
  const auto status = as_int(f[10]);
  switch (status) {
    case 0: job.status = JobStatus::Failed; break;
    case 1: job.status = JobStatus::Completed; break;
    case 2: job.status = JobStatus::PartialToBeContinued; break;
    case 3: job.status = JobStatus::PartialLastOfJob; break;
    case 5: job.status = JobStatus::Cancelled; break;
    default: job.status = JobStatus::Unknown; break;
  }
  job.user_id = as_int(f[11]);
  job.group_id = as_int(f[12]);
  job.executable_number = as_int(f[13]);
  job.queue_number = as_int(f[14]);
  job.partition_number = as_int(f[15]);
  job.preceding_job = as_int(f[16]);
  job.think_time = as_int(f[17]);
  return true;
}

Trace parse_swf(std::istream& in) {
  Trace trace;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    // Strip leading whitespace for the comment check.
    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    if (line[first] == ';') {
      std::size_t text = line.find_first_not_of("; \t", first);
      trace.header.push_back(text == std::string::npos ? std::string{}
                                                       : line.substr(text));
      continue;
    }
    SwfJob job;
    if (parse_swf_line(line, job)) {
      trace.jobs.push_back(job);
    } else {
      ++trace.malformed_lines;
    }
  }
  return trace;
}

Trace parse_swf_file(const std::string& path) {
  std::ifstream f(path);
  if (!f) throw IoError("parse_swf_file: cannot open " + path);
  return parse_swf(f);
}

std::string format_swf_line(const SwfJob& job) {
  std::ostringstream os;
  const auto num = [&os](double v, bool integral) {
    if (integral || v == static_cast<double>(static_cast<std::int64_t>(v))) {
      os << static_cast<std::int64_t>(v);
    } else {
      os << v;
    }
  };
  os << job.job_number << ' ' << job.submit_time << ' ' << job.wait_time << ' ';
  num(job.run_time, false);
  os << ' ' << job.allocated_processors << ' ';
  num(job.avg_cpu_time, false);
  os << ' ';
  num(job.used_memory_kb, false);
  os << ' ' << job.requested_processors << ' ';
  num(job.requested_time, false);
  os << ' ';
  num(job.requested_memory_kb, false);
  os << ' ' << static_cast<int>(job.status) << ' ' << job.user_id << ' '
     << job.group_id << ' ' << job.executable_number << ' ' << job.queue_number
     << ' ' << job.partition_number << ' ' << job.preceding_job << ' '
     << job.think_time;
  return os.str();
}

void write_swf(std::ostream& out, const Trace& trace) {
  for (const auto& h : trace.header) out << "; " << h << '\n';
  for (const auto& job : trace.jobs) out << format_swf_line(job) << '\n';
}

void write_swf_file(const std::string& path, const Trace& trace) {
  std::ofstream f(path);
  if (!f) throw IoError("write_swf_file: cannot open " + path);
  write_swf(f, trace);
}

TraceStats compute_stats(const std::vector<SwfJob>& jobs,
                         double long_threshold_seconds) {
  TraceStats s;
  s.long_job_threshold_seconds = long_threshold_seconds;
  s.total_jobs = jobs.size();
  s.min_processors = std::numeric_limits<std::int64_t>::max();
  s.max_processors = 0;
  s.min_runtime = std::numeric_limits<double>::infinity();
  s.max_runtime = 0.0;
  for (const auto& j : jobs) {
    if (j.completed()) {
      ++s.completed_jobs;
      if (j.run_time > long_threshold_seconds) ++s.long_completed_jobs;
    }
    if (j.allocated_processors >= 0) {
      s.min_processors = std::min(s.min_processors, j.allocated_processors);
      s.max_processors = std::max(s.max_processors, j.allocated_processors);
    }
    if (j.run_time >= 0.0) {
      s.min_runtime = std::min(s.min_runtime, j.run_time);
      s.max_runtime = std::max(s.max_runtime, j.run_time);
    }
  }
  if (jobs.empty()) {
    s.min_processors = 0;
    s.min_runtime = 0.0;
  }
  return s;
}

std::vector<SwfJob> filter_completed_long(const std::vector<SwfJob>& jobs,
                                          double min_runtime_seconds) {
  std::vector<SwfJob> out;
  for (const auto& j : jobs) {
    if (j.completed() && j.run_time >= min_runtime_seconds) out.push_back(j);
  }
  return out;
}

}  // namespace svo::trace
