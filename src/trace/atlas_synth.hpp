/// \file atlas_synth.hpp
/// Synthetic generator statistically matched to LLNL-Atlas-2006-2.1-cln
/// (the proprietary trace the paper uses; see DESIGN.md §1).
///
/// Matched marginals (Section IV-A of the paper):
///  - ~43,778 jobs, of which ~21,915 completed successfully (~50%);
///  - allocated processors in [8, 8832] (Atlas: 1152 nodes x 8 cores);
///  - ~13% of completed jobs "large" (run_time > 7200 s);
///  - submit times spanning Nov 2006 - Jun 2007 (~18.4e6 s).
///
/// The VO-formation pipeline consumes only (allocated processors,
/// average CPU time) of large completed jobs, so matching those marginals
/// preserves the experiments' input distribution. The generator also
/// guarantees a configurable minimum count of large completed jobs at the
/// canonical program sizes {256, ..., 8192} the paper evaluates.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace svo::trace {

/// Generator options (defaults reproduce the paper's numbers).
struct AtlasSynthOptions {
  std::size_t num_jobs = 43'778;
  /// Probability a job completes successfully (Atlas: 21915/43778).
  double completed_fraction = 0.5006;
  /// Among completed jobs, probability of run_time > 7200 s (paper: ~13%).
  double long_fraction = 0.13;
  std::int64_t min_processors = 8;
  std::int64_t max_processors = 8832;
  /// Trace time span in seconds (Nov 2006 - Jun 2007).
  std::int64_t span_seconds = 18'400'000;
  /// Size-runtime coupling exponent: runtimes are scaled by
  /// (procs / min_procs)^size_runtime_exponent. 0 (default) draws size
  /// and runtime independently; negative values make big jobs run
  /// shorter relative to their size — the correlation hypothesized to
  /// drive the paper's Fig. 2 (VO size growing with task count), since
  /// the Table I deadline is proportional to Runtime x n.
  double size_runtime_exponent = 0.0;
  /// Canonical program sizes that must each have at least
  /// `min_jobs_per_canonical_size` large completed jobs.
  std::vector<std::int64_t> canonical_sizes{256, 512, 1024, 2048, 4096, 8192};
  std::size_t min_jobs_per_canonical_size = 24;
};

/// Generate a synthetic Atlas-like trace. Deterministic in `seed`.
[[nodiscard]] Trace generate_atlas_like(const AtlasSynthOptions& opts,
                                        std::uint64_t seed);

namespace detail {

/// Throws InvalidArgument on out-of-range AtlasSynthOptions fields.
/// Shared by the one-shot generator and the chunked stream
/// (trace/stream.hpp) so both reject the same inputs.
void validate_atlas_options(const AtlasSynthOptions& opts);

/// Draw one synthetic job with id `id` from `rng`. The single source of
/// the per-job marginals: generate_atlas_like consumes it sequentially,
/// and AtlasJobStream consumes the *same* sequence chunk by chunk, so
/// the streamed jobs equal the one-shot jobs (before the canonical-size
/// retag and the submit-time sort, which need the whole trace).
[[nodiscard]] SwfJob synthesize_job(std::int64_t id,
                                    const AtlasSynthOptions& opts,
                                    util::Xoshiro256& rng);

}  // namespace detail

}  // namespace svo::trace
