/// \file programs.hpp
/// Extraction of "application programs" from a trace, per Section IV-A:
/// a completed job with run_time >= 7200 s becomes a program whose number
/// of tasks is the job's allocated-processor count and whose per-task
/// mean runtime is the job's average CPU time.
#pragma once

#include <cstdint>
#include <vector>

#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace svo::trace {

/// One application program T = {T_1..T_n} derived from a trace job.
struct ProgramSpec {
  /// n: number of independent tasks (= allocated processors of the job).
  std::size_t num_tasks = 0;
  /// Mean per-task runtime in seconds (= average CPU time of the job).
  double mean_task_runtime = 0.0;
  /// Originating SWF job number (for provenance).
  std::int64_t source_job = -1;
};

/// Turn one eligible job into a ProgramSpec. Throws InvalidArgument if the
/// job is not completed, too short, or has non-positive size/CPU time.
[[nodiscard]] ProgramSpec program_from_job(const SwfJob& job,
                                           double min_runtime_seconds = 7200.0);

/// Sample `count` programs with exactly `num_tasks` tasks from the
/// eligible jobs of `jobs` (uniformly, without replacement while
/// possible). Returns fewer than `count` when the trace lacks material.
[[nodiscard]] std::vector<ProgramSpec> sample_programs(
    const std::vector<SwfJob>& jobs, std::size_t num_tasks, std::size_t count,
    util::Xoshiro256& rng, double min_runtime_seconds = 7200.0);

/// Eligible job count at the given size (diagnostics / tests).
[[nodiscard]] std::size_t count_eligible(const std::vector<SwfJob>& jobs,
                                         std::size_t num_tasks,
                                         double min_runtime_seconds = 7200.0);

}  // namespace svo::trace
