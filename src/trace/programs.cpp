#include "trace/programs.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace svo::trace {

ProgramSpec program_from_job(const SwfJob& job, double min_runtime_seconds) {
  detail::require(job.completed(), "program_from_job: job not completed");
  detail::require(job.run_time >= min_runtime_seconds,
                  "program_from_job: job below runtime threshold");
  detail::require(job.allocated_processors > 0,
                  "program_from_job: job has no allocated processors");
  // Fall back to wall-clock runtime when average CPU time is unknown (-1).
  const double cpu = job.avg_cpu_time > 0.0 ? job.avg_cpu_time : job.run_time;
  ProgramSpec p;
  p.num_tasks = static_cast<std::size_t>(job.allocated_processors);
  p.mean_task_runtime = cpu;
  p.source_job = job.job_number;
  return p;
}

std::vector<ProgramSpec> sample_programs(const std::vector<SwfJob>& jobs,
                                         std::size_t num_tasks,
                                         std::size_t count,
                                         util::Xoshiro256& rng,
                                         double min_runtime_seconds) {
  std::vector<const SwfJob*> pool;
  for (const auto& j : jobs) {
    if (j.completed() && j.run_time >= min_runtime_seconds &&
        j.allocated_processors == static_cast<std::int64_t>(num_tasks)) {
      pool.push_back(&j);
    }
  }
  std::vector<ProgramSpec> out;
  if (pool.empty() || count == 0) return out;
  // Without replacement while the pool lasts, then with replacement.
  std::vector<std::size_t> order(pool.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const SwfJob* j = (i < order.size()) ? pool[order[i]]
                                         : pool[rng.index(pool.size())];
    out.push_back(program_from_job(*j, min_runtime_seconds));
  }
  return out;
}

std::size_t count_eligible(const std::vector<SwfJob>& jobs,
                           std::size_t num_tasks,
                           double min_runtime_seconds) {
  return static_cast<std::size_t>(std::count_if(
      jobs.begin(), jobs.end(), [&](const SwfJob& j) {
        return j.completed() && j.run_time >= min_runtime_seconds &&
               j.allocated_processors == static_cast<std::int64_t>(num_tasks);
      }));
}

}  // namespace svo::trace
