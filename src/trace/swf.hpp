/// \file swf.hpp
/// Standard Workload Format (SWF) v2 model, parser and writer.
///
/// The paper drives its experiments from LLNL-Atlas-2006-2.1-cln.swf of
/// the Parallel Workloads Archive. SWF is a line-oriented text format:
/// ';'-prefixed header comments followed by one job per line with 18
/// whitespace-separated numeric fields; -1 marks "unknown".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace svo::trace {

/// SWF job status codes (field 11).
enum class JobStatus : int {
  Failed = 0,
  Completed = 1,
  PartialToBeContinued = 2,
  PartialLastOfJob = 3,
  Cancelled = 5,
  Unknown = -1,
};

/// One SWF record. Field names and order follow the SWF definition;
/// -1 encodes missing values exactly as in the archive files.
struct SwfJob {
  std::int64_t job_number = -1;          ///< 1: job id
  std::int64_t submit_time = -1;         ///< 2: seconds since trace start
  std::int64_t wait_time = -1;           ///< 3: seconds in queue
  double run_time = -1.0;                ///< 4: wall-clock runtime, seconds
  std::int64_t allocated_processors = -1;///< 5
  double avg_cpu_time = -1.0;            ///< 6: average CPU seconds used
  double used_memory_kb = -1.0;          ///< 7
  std::int64_t requested_processors = -1;///< 8
  double requested_time = -1.0;          ///< 9
  double requested_memory_kb = -1.0;     ///< 10
  JobStatus status = JobStatus::Unknown; ///< 11
  std::int64_t user_id = -1;             ///< 12
  std::int64_t group_id = -1;            ///< 13
  std::int64_t executable_number = -1;   ///< 14
  std::int64_t queue_number = -1;        ///< 15
  std::int64_t partition_number = -1;    ///< 16
  std::int64_t preceding_job = -1;       ///< 17
  std::int64_t think_time = -1;          ///< 18

  [[nodiscard]] bool completed() const noexcept {
    return status == JobStatus::Completed;
  }
};

/// A parsed trace: header comments plus jobs, with parse accounting.
struct Trace {
  std::vector<std::string> header;  ///< ';'-comment lines, prefix stripped
  std::vector<SwfJob> jobs;
  std::size_t malformed_lines = 0;  ///< lines skipped during parsing
};

/// Parse one SWF data line. Returns false (and leaves `job` unspecified)
/// on malformed input; never throws for bad data.
[[nodiscard]] bool parse_swf_line(std::string_view line, SwfJob& job);

/// Parse a whole SWF stream. Comment lines (';') become header entries;
/// malformed data lines are counted, not fatal.
[[nodiscard]] Trace parse_swf(std::istream& in);

/// Parse an SWF file. Throws IoError when the file cannot be opened.
[[nodiscard]] Trace parse_swf_file(const std::string& path);

/// Serialize a job as one SWF line (18 fields, space separated).
[[nodiscard]] std::string format_swf_line(const SwfJob& job);

/// Write a full trace (headers as ';' comments, then jobs).
void write_swf(std::ostream& out, const Trace& trace);

/// Write to a file. Throws IoError when the file cannot be opened.
void write_swf_file(const std::string& path, const Trace& trace);

/// Aggregate statistics of a job collection (mirrors the paper's workload
/// characterization in Section IV-A).
struct TraceStats {
  std::size_t total_jobs = 0;
  std::size_t completed_jobs = 0;
  /// Completed jobs with run_time > threshold_seconds ("large jobs").
  std::size_t long_completed_jobs = 0;
  double long_job_threshold_seconds = 7200.0;
  std::int64_t min_processors = 0;
  std::int64_t max_processors = 0;
  double min_runtime = 0.0;
  double max_runtime = 0.0;
  /// Fraction of completed jobs that are long.
  [[nodiscard]] double long_fraction() const noexcept {
    return completed_jobs == 0
               ? 0.0
               : static_cast<double>(long_completed_jobs) /
                     static_cast<double>(completed_jobs);
  }
};

/// Compute statistics over `jobs` with a configurable "long job" cutoff.
[[nodiscard]] TraceStats compute_stats(const std::vector<SwfJob>& jobs,
                                       double long_threshold_seconds = 7200.0);

/// Jobs passing the paper's program-source filter: completed and
/// run_time >= min_runtime_seconds.
[[nodiscard]] std::vector<SwfJob> filter_completed_long(
    const std::vector<SwfJob>& jobs, double min_runtime_seconds = 7200.0);

}  // namespace svo::trace
