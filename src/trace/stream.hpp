/// \file stream.hpp
/// Chunked, memory-bounded streaming ingest over the synthetic Atlas
/// generator — the workload source of the streaming grid economy
/// (sim/stream_engine.hpp). generate_atlas_like materializes the whole
/// trace because its canonical-size retag and submit-time sort are
/// global passes; at millions of jobs that is hundreds of MB nobody
/// consuming jobs one at a time needs. AtlasJobStream draws the *same*
/// per-job sequence (trace::detail::synthesize_job from the same seeded
/// generator) but hands it out in caller-sized chunks, so memory stays
/// O(chunk) no matter how many jobs the options ask for.
///
/// Contracts (tests/trace/stream_test.cpp):
///  - chunk-size invariance: for a fixed (options, seed), concatenating
///    next()/next_chunk() calls of any sizes yields one fixed job
///    sequence — chunk boundaries never change a draw;
///  - one-shot equality: that sequence, stable-sorted by submit time,
///    equals generate_atlas_like(options, seed) when the canonical-size
///    guarantee is disabled (the retag pass is inherently global and is
///    documented as unavailable in streaming mode);
///  - jobs are produced in generation order, NOT submit order — a
///    streaming consumer assigns its own arrival clock.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "trace/atlas_synth.hpp"
#include "trace/programs.hpp"
#include "trace/swf.hpp"
#include "util/rng.hpp"

namespace svo::trace {

/// Memory-bounded iterator over a synthetic Atlas-like job stream.
/// Deterministic in (options, seed); validates the options on
/// construction exactly like generate_atlas_like.
class AtlasJobStream {
 public:
  AtlasJobStream(AtlasSynthOptions opts, std::uint64_t seed);

  /// Draw the next job into `out`. Returns false (leaving `out`
  /// untouched) once options.num_jobs jobs have been produced.
  bool next(SwfJob& out);

  /// Draw up to `max_jobs` further jobs (fewer at end of stream; empty
  /// when exhausted). Requires max_jobs > 0 — a zero-sized chunk is a
  /// caller bug, not a way to poll.
  [[nodiscard]] std::vector<SwfJob> next_chunk(std::size_t max_jobs);

  /// Scan forward for the next *eligible program source* — a completed
  /// job with run_time >= min_runtime_seconds and, when max_tasks > 0,
  /// at most max_tasks allocated processors — and convert it via
  /// program_from_job. Jobs skipped by the scan are consumed and gone,
  /// exactly like a live feed. nullopt when the stream ends first.
  [[nodiscard]] std::optional<ProgramSpec> next_program(
      double min_runtime_seconds = 7200.0, std::size_t max_tasks = 0);

  /// Jobs produced so far / still available.
  [[nodiscard]] std::size_t produced() const noexcept { return produced_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return opts_.num_jobs - produced_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

  [[nodiscard]] const AtlasSynthOptions& options() const noexcept {
    return opts_;
  }

  /// Rewind to the first job (same seed, same sequence again).
  void reset();

 private:
  AtlasSynthOptions opts_;
  std::uint64_t seed_ = 0;
  util::Xoshiro256 rng_;
  std::size_t produced_ = 0;
};

}  // namespace svo::trace
